"""The columnar vectorized core engine (docs/performance.md).

The naive simulation loop ticks every :class:`~repro.cpu.core.Core`
object every cycle.  At 16 nodes that is ~78% wasted work (most cores
are STALLED, burning one counter increment per tick) and the remaining
~22% — the RUNNING cores' ``_issue`` path — is dominated by
``numpy.random.Generator`` scalar draws and per-op object construction.
Neither cost shrinks with better networks; it is the ceiling on the
256–1024-node sweeps the ROADMAP targets.

This module replaces the per-object tick with a *columnar* engine that
is **bit-exact** with the naive loop (every golden snapshot, counter and
``CmpResults`` field identical — enforced by
``tests/cmp/test_vector_equivalence.py``):

* **Columnar phase ledgers** — per-node accrual boundaries and pending
  busy/stall/sync counts live in parallel numpy arrays indexed by node
  (:func:`accrue_columns`).  Passive states (STALLED, the wait states,
  the between-poll stretches of a spin) cost *nothing per cycle*: their
  counter arithmetic is charged lazily, in bulk, at the next state
  transition or flush.  This is legal because a passive tick's entire
  body is ``counter += 1`` — the same argument that makes the
  fast-forward engine's ``skip()`` exact, applied per node instead of
  per system.
* **Event-scheduled actives** — the only states with per-cycle actions
  are RUNNING (issue), LOCK_HOLD (the release tick) and the spin states
  (the polls).  RUNNING nodes live in a set; hold releases and spin
  polls live in heaps keyed by the absolute cycle computed by
  :func:`hold_release_cycle` / :func:`spin_poll_cycle`.  The per-cycle
  core phase touches exactly the nodes the naive loop would have found
  something to do for.
* **A replayed RNG** — :class:`ReplayRng` reproduces the exact draw
  stream of ``numpy.random.Generator(PCG64(seed))`` from buffered raw
  64-bit words, turning ~0.4–1.3 µs scalar draws into ~0.1 µs list
  reads without perturbing a single sample.
* **An inlined issue path** — :class:`ColumnarCore` overrides
  ``_issue`` with a fused generate-and-access loop that skips ``Op``
  construction for the ~99% of ops that never stall and inlines the L1
  hit path, while delegating every miss to the real
  :meth:`~repro.coherence.l1.L1Controller.access` so the protocol
  machinery (requests, transients, fills) is shared, not duplicated.

Why this cannot change results: during the cores phase no core's state
can be mutated by anything but its own action.  Every external wake —
a data fill, a confirmation, a §5.1 release signal — arrives through
the calendar or the network tick, and both run *before* the cores in
``CmpSystem.tick``; no network's ``try_send`` delivers synchronously.
So the engine's per-cycle worklist (running ∪ due holds ∪ due polls),
processed in node order, visits exactly the nodes whose naive tick
would have done real work, in the same order, with the same RNG
stream.

The naive object-per-node loop remains the reference implementation,
selected with ``CmpConfig(vectorized=False)`` or ``REPRO_NO_VECTOR=1``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

import numpy as np

from repro.coherence.l1 import L1State
from repro.coherence.messages import MsgType
from repro.cpu.core import Core, CoreState, Op, OpKind
from repro.cpu.sync import SyncManager
from repro.util.stats import StatGroup
from repro.workloads.splash2 import _REGION, _SHARED_BASE

__all__ = [
    "ReplayRng",
    "ColumnarCore",
    "VectorCoreEngine",
    "accrue_columns",
    "hold_release_cycle",
    "spin_poll_cycle",
    "mshr_admit_mask",
    "BUCKET_CODE",
    "BUSY",
    "STALL",
    "SYNC",
]

# ---------------------------------------------------------------------------
# Columnar kernels
#
# Small pure functions over parallel per-node arrays.  They are the
# engine's arithmetic core and the unit the hypothesis suite
# (tests/cpu/test_vector_primitives.py) checks against scalar
# re-derivations on random state vectors.
# ---------------------------------------------------------------------------

#: Cycle-bucket codes: which counter a tick in a given state feeds.
BUSY, STALL, SYNC = 0, 1, 2
NUM_BUCKETS = 3

#: CoreState -> bucket code, mirroring Core.tick's counter choice.
BUCKET_CODE = {
    state: (
        BUSY if state is CoreState.RUNNING
        else STALL if state is CoreState.STALLED
        else SYNC
    )
    for state in CoreState
}

_SPIN_STATES = (CoreState.BARRIER_SPIN, CoreState.LOCK_SPIN)
_NEVER = -1


def accrue_columns(
    until: np.ndarray, pending: np.ndarray, codes: np.ndarray, boundary: int
) -> np.ndarray:
    """Charge every node's elapsed ticks to its current bucket, in bulk.

    ``until[j]`` is the exclusive cycle through which node ``j``'s
    counters are settled; ``codes[j]`` its current bucket.  After the
    call every node is settled through ``boundary``: ``pending[j, c]``
    gained ``max(0, boundary - until[j])`` for ``c = codes[j]`` and
    ``until`` is clamped up to ``boundary``.  Nodes already settled at
    or past ``boundary`` (their own action pre-settled the in-flight
    tick) are untouched.  Returns the per-node deltas.
    """
    delta = boundary - until
    np.clip(delta, 0, None, out=delta)
    pending[np.arange(len(until)), codes] += delta
    np.maximum(until, boundary, out=until)
    return delta


def hold_release_cycle(anchor: int, hold_cycles: int) -> int:
    """Absolute cycle of a lock hold's release tick.

    ``anchor`` is the first cycle the naive loop would tick the core in
    LOCK_HOLD.  Each tick decrements the countdown and releases when it
    reaches zero, so ``hold_cycles >= 1`` releases on the
    ``hold_cycles``-th tick and a degenerate zero-cycle hold still
    burns its one release tick:

    >>> hold_release_cycle(10, 30)
    39
    >>> hold_release_cycle(10, 0)
    10
    """
    return anchor + max(1, hold_cycles) - 1


def spin_poll_cycle(anchor: int, next_spin: int) -> int:
    """Absolute cycle of a spinning core's next poll.

    The naive spin loop gates on ``cycle >= _next_spin`` every tick, so
    the first poll after entering a spin state at ``anchor`` lands on
    whichever comes later:

    >>> spin_poll_cycle(10, 4), spin_poll_cycle(10, 12)
    (10, 12)
    """
    return anchor if next_spin <= anchor else next_spin


def mshr_admit_mask(
    occupancy: np.ndarray, limit: int, merged: np.ndarray
) -> np.ndarray:
    """Columnar mirror of :meth:`MshrFile.allocate`'s admission rule.

    A batch of one prospective miss per node is admitted where the line
    already holds a register (a merge) or the file has a free one.
    Used by the engine's :meth:`VectorCoreEngine.audit` invariant check
    and validated against the scalar file by the property suite.
    """
    return merged | (occupancy < limit)


# ---------------------------------------------------------------------------
# Bit-exact RNG replay
# ---------------------------------------------------------------------------


class ReplayRng:
    """Replays ``numpy.random.Generator(PCG64(seed))`` draws from a buffer.

    The cores draw scalars one at a time (op mix, line choice,
    blocking-fraction), which pays numpy's full ufunc dispatch per draw.
    This class pulls raw 64-bit words from the bit generator in blocks
    (``PCG64.random_raw``) and applies the same output transforms the
    Generator would, so the produced stream is *identical sample for
    sample* — including PCG64's cross-call stash of the unused high
    half of a word split for 32-bit output:

    * ``random()`` — ``(word >> 11) * 2**-53`` (53-bit mantissa fill).
    * ``integers(low, high)`` — Lemire's 32-bit multiply-shift bounded
      draw with rejection, the path numpy takes for the default
      ``int64`` dtype whenever the range fits in 32 bits (every draw
      the workloads make).  A range of one returns ``low`` without
      consuming a word, exactly as numpy does.

    The equivalence is pinned by hypothesis tests interleaving both
    call types against a real ``Generator`` over random seeds.
    """

    __slots__ = ("_raw", "_buffer", "_floats", "_pos", "_has32", "_stash32")

    _BLOCK = 1024

    def __init__(self, seed: int):
        self._raw = np.random.PCG64(seed).random_raw
        self._buffer: list[int] = []
        self._floats: list[float] = []
        self._pos = 0
        self._has32 = False
        self._stash32 = 0

    def _refill(self) -> list[int]:
        """Replace the exhausted buffer with a fresh block of raw words.

        The ``random()`` transform is precomputed for the whole block:
        ``(word >> 11) * 2**-53`` is one exact uint64 shift and one
        float64 multiply whether done by numpy on the block or by
        Python per word, so ``_floats[i]`` is bitwise what ``random()``
        would return for ``_buffer[i]``.
        """
        raw = self._raw(self._BLOCK)
        self._buffer = buffer = raw.tolist()
        self._floats = ((raw >> 11) * 1.1102230246251565e-16).tolist()
        self._pos = 0
        return buffer

    def _next64(self) -> int:
        pos = self._pos
        buffer = self._buffer
        if pos >= len(buffer):
            buffer = self._refill()
            pos = 0
        self._pos = pos + 1
        return buffer[pos]

    def _next32(self) -> int:
        # PCG64 splits one 64-bit word into two 32-bit outputs: the low
        # half first, the high half stashed for the next 32-bit request
        # (64-bit requests bypass and preserve the stash).
        if self._has32:
            self._has32 = False
            return self._stash32
        word = self._next64()
        self._stash32 = word >> 32
        self._has32 = True
        return word & 0xFFFFFFFF

    def random(self) -> float:
        """One double in [0, 1), identical to ``Generator.random()``."""
        pos = self._pos
        if pos >= len(self._buffer):
            self._refill()
            pos = 0
        self._pos = pos + 1
        return self._floats[pos]

    def integers(self, low: int, high: int) -> int:
        """One int in [low, high), identical to ``Generator.integers``."""
        rng = high - low - 1  # inclusive range, numpy's convention
        if rng == 0:
            return low
        rng_excl = rng + 1
        m = self._next32() * rng_excl
        leftover = m & 0xFFFFFFFF
        if leftover < rng_excl:
            threshold = (0xFFFFFFFF - rng) % rng_excl
            while leftover < threshold:
                m = self._next32() * rng_excl
                leftover = m & 0xFFFFFFFF
        return low + (m >> 32)


# ---------------------------------------------------------------------------
# The columnar core
# ---------------------------------------------------------------------------


class ColumnarCore(Core):
    """A :class:`Core` whose state transitions notify the vector engine.

    Behaviourally identical to the base core — the overridden
    ``_issue`` consumes the same RNG stream, touches the same L1/MSHR
    structures in the same order and leaves identical counters; it just
    does so without per-op allocation or per-draw ufunc dispatch.  The
    ``state`` property is the engine's write-through hook: every
    transition settles the node's cycle ledger and (un)schedules it.
    """

    def __init__(self, engine: "VectorCoreEngine", *args, **kwargs):
        # The base initializer assigns ``self.state`` before the engine
        # registry knows this node; arm the hook only afterwards.
        self._engine: Optional[VectorCoreEngine] = None
        self._state_value = CoreState.RUNNING
        super().__init__(*args, **kwargs)
        self._engine = engine
        engine.register(self)
        # Pre-resolved workload geometry for the fused issue loop.
        workload = self.workload
        sig = workload.signature
        n = workload.num_nodes
        self._shared_slots = max(1, sig.shared_pool_lines // n)
        self._butterfly_mod = max(1, n.bit_length() - 1)
        node = workload.node
        side = int(round(n ** 0.5))
        x, y = node % side, node // side
        candidates = []
        if x > 0:
            candidates.append(node - 1)
        if x < side - 1:
            candidates.append(node + 1)
        if y > 0:
            candidates.append(node - side)
        if y < side - 1:
            candidates.append(node + side)
        self._neighbors = candidates
        # Compile the fused issue loop with every per-core constant in
        # closure cells; overriding the method with the instance
        # attribute is what the engine's ``core._issue(cycle)`` binds.
        self._issue = _build_issue(self)

    @property
    def state(self) -> CoreState:
        return self._state_value

    @state.setter
    def state(self, new: CoreState) -> None:
        old = self._state_value
        self._state_value = new
        engine = self._engine
        if engine is not None and new is not old:
            engine.on_state_change(self, old, new)

def _build_issue(core: "ColumnarCore"):
    """Compile ``core``'s fused issue loop, constants in closure cells.

    The fused loop is ``Core._issue`` + ``Core._issue_mem`` +
    ``AppWorkload.next_op`` / ``_pick_line`` / ``_pick_shared`` in one
    function — same branch order, same RNG consumption, same L1
    counter and request sequence.  Misses fall through to the real
    ``L1Controller.access``; only the hit paths (no protocol side
    effects beyond counters and LRU) are inlined.

    Everything per-core-constant — signature fractions, workload
    geometry, L1 internals, counter objects, state enums — is captured
    as a closure free variable, so each call's prologue is a handful
    of RNG-cursor loads instead of re-deriving ~40 locals; at three
    issue calls per simulated cycle the prologue used to be a fifth of
    the whole cores phase.

    The uniform draws are inlined: the RNG cursor and 32-bit stash
    live in locals, every ``random()`` is one read from the
    block-precomputed float list, and the hot-private bounded draw
    (the overwhelmingly most frequent ``integers`` call) is Lemire
    with a precomputed rejection threshold.  The rarer bounded draws
    still go through :meth:`ReplayRng.integers`, with cursor and stash
    written back before and re-read after (a rejection sequence can
    consume words and refill the buffer); the ``finally`` keeps them
    consistent across every exit path and settles the locally
    accumulated op and instruction counts.
    """
    workload = core.workload
    sig = workload.signature
    config = core.config
    l1 = core.l1
    cache = l1.array
    states = l1._states
    states_get = states.get
    sets = cache._sets
    nsets = cache.num_sets
    counts = l1._count
    c_read_hits = counts["read_hits"]
    c_write_hits = counts["write_hits"]
    c_upgrades = counts["upgrades"]
    mshr_allocate = core.mshr.allocate
    l1_access = l1.access
    l1_request = l1._request
    cache_touch = cache.touch
    sync_access = core._sync_access
    rng = core._rng
    refill = rng._refill

    slots = range(config.ipc)
    blocking_fraction = config.blocking_fraction
    mem_fraction = sig.mem_fraction
    shared_fraction = sig.shared_fraction
    shared_or_stream = sig.shared_fraction + sig.stream_fraction
    cold_fraction = sig.private_cold_fraction
    write_fraction = sig.write_fraction
    shared_write_fraction = sig.shared_write_fraction
    hot_lines = sig.hot_lines
    cold_lines = sig.cold_lines
    lock_count = sig.lock_count
    lock_hold_cycles = sig.lock_hold_cycles
    barrier_interval = sig.barrier_interval
    lock_interval = sig.lock_interval
    pattern = sig.comm_pattern
    pool_lines = sig.shared_pool_lines
    private_base = workload._private_base
    stream_base = workload._stream_base
    cold_base = workload._cold_base
    num_nodes = workload.num_nodes
    shared_slots = core._shared_slots
    butterfly_mod = core._butterfly_mod
    neighbors = core._neighbors
    nneigh = len(neighbors)
    node = workload.node

    # Per-site Lemire rejection thresholds for every bounded draw the
    # loop can make: ``(2**32 - high) % high``.  A draw is accepted iff
    # ``(v32 * high) & 0xFFFFFFFF >= threshold`` — equivalent to
    # :meth:`ReplayRng.integers`'s accept/reject sequence because the
    # threshold is below ``high``.  A range of one consumes no words.
    def _lemire_threshold(high: int) -> int:
        return (0x1_0000_0000 - high) % high if high > 1 else 0

    hot_threshold = _lemire_threshold(hot_lines)
    pool_threshold = _lemire_threshold(pool_lines)
    neigh_threshold = _lemire_threshold(nneigh)
    slots_threshold = _lemire_threshold(shared_slots)
    lock_threshold = _lemire_threshold(lock_count)

    S, E, M = L1State.S, L1State.E, L1State.M
    S_MA = L1State.S_MA
    REQ_UPG = MsgType.REQ_UPG
    MEM = OpKind.MEM
    STALLED = CoreState.STALLED
    BARRIER_ARRIVE = CoreState.BARRIER_ARRIVE
    LOCK_ACQUIRE = CoreState.LOCK_ACQUIRE
    barrier_line = SyncManager.barrier_line()
    lock_line0 = SyncManager.lock_line(0)

    # Sync-op cadence as absolute op counts instead of per-op modulo:
    # ``count % interval == 0`` fires exactly at multiples, so the
    # next-multiple cells reproduce it; -1 never matches.
    next_barrier = barrier_interval or -1
    next_lock = lock_interval or -1

    # The RNG cursor lives in closure cells, not on the ReplayRng: with
    # every draw inlined nothing else consumes this core's stream, so
    # per-call attribute loads and write-backs would be pure overhead.
    # Exhaustion is handled by IndexError instead of a bounds compare
    # per draw — free on the hot path under 3.11 exception tables.
    words = rng._buffer
    floats = rng._floats
    pos = rng._pos
    has32 = rng._has32
    stash32 = rng._stash32

    def issue(cycle: int) -> None:
        nonlocal next_barrier, next_lock
        nonlocal words, floats, pos, has32, stash32
        count = workload._ops_generated
        instr = 0
        op = core._pending

        try:
            for _slot in slots:
                if op is not None:
                    # A stalled MEM op resumes first (never WORK/sync).
                    core._pending = None
                    line = op.line
                    is_write = op.is_write
                    op = None
                else:
                    count += 1
                    if count == next_barrier:
                        next_barrier += barrier_interval
                        if count == next_lock:
                            # The naive modulo check never sees a count
                            # the barrier consumed; the lock cadence is
                            # unshifted.
                            next_lock += lock_interval
                        core.state = BARRIER_ARRIVE
                        sync_access(barrier_line, True)
                        return
                    if count == next_lock:
                        next_lock += lock_interval
                        if lock_count < 2:
                            lock_id = 0
                        else:
                            while True:
                                if has32:
                                    has32 = False
                                    v = stash32
                                else:
                                    try:
                                        word = words[pos]
                                    except IndexError:
                                        words = refill()
                                        floats = rng._floats
                                        pos = 0
                                        word = words[0]
                                    pos += 1
                                    stash32 = word >> 32
                                    has32 = True
                                    v = word & 0xFFFFFFFF
                                m = v * lock_count
                                if (m & 0xFFFFFFFF) >= lock_threshold:
                                    break
                            lock_id = m >> 32
                        core._lock_id = lock_id
                        core._hold_left = lock_hold_cycles
                        core.state = LOCK_ACQUIRE
                        sync_access(lock_line0 + lock_id, True)
                        return
                    try:
                        r = floats[pos]
                    except IndexError:
                        words = refill()
                        floats = rng._floats
                        pos = 0
                        r = floats[0]
                    pos += 1
                    if r >= mem_fraction:
                        instr += 1
                        continue
                    try:
                        r = floats[pos]
                    except IndexError:
                        words = refill()
                        floats = rng._floats
                        pos = 0
                        r = floats[0]
                    pos += 1
                    if r < shared_fraction:
                        if pattern == "uniform":
                            if pool_lines < 2:
                                line = _SHARED_BASE
                            else:
                                while True:
                                    if has32:
                                        has32 = False
                                        v = stash32
                                    else:
                                        try:
                                            word = words[pos]
                                        except IndexError:
                                            words = refill()
                                            floats = rng._floats
                                            pos = 0
                                            word = words[0]
                                        pos += 1
                                        stash32 = word >> 32
                                        has32 = True
                                        v = word & 0xFFFFFFFF
                                    m = v * pool_lines
                                    if (m & 0xFFFFFFFF) >= pool_threshold:
                                        break
                                line = _SHARED_BASE + (m >> 32)
                        else:
                            if pattern == "butterfly":
                                stage = workload._butterfly_stage
                                workload._butterfly_stage = (
                                    stage + 1
                                ) % butterfly_mod
                                peer = node ^ (1 << stage)
                            elif nneigh < 2:
                                peer = neighbors[0]
                            else:  # neighbor
                                while True:
                                    if has32:
                                        has32 = False
                                        v = stash32
                                    else:
                                        try:
                                            word = words[pos]
                                        except IndexError:
                                            words = refill()
                                            floats = rng._floats
                                            pos = 0
                                            word = words[0]
                                        pos += 1
                                        stash32 = word >> 32
                                        has32 = True
                                        v = word & 0xFFFFFFFF
                                    m = v * nneigh
                                    if (m & 0xFFFFFFFF) >= neigh_threshold:
                                        break
                                peer = neighbors[m >> 32]
                            if shared_slots < 2:
                                slot_draw = 0
                            else:
                                while True:
                                    if has32:
                                        has32 = False
                                        v = stash32
                                    else:
                                        try:
                                            word = words[pos]
                                        except IndexError:
                                            words = refill()
                                            floats = rng._floats
                                            pos = 0
                                            word = words[0]
                                        pos += 1
                                        stash32 = word >> 32
                                        has32 = True
                                        v = word & 0xFFFFFFFF
                                    m = v * shared_slots
                                    if (m & 0xFFFFFFFF) >= slots_threshold:
                                        break
                                slot_draw = m >> 32
                            line = (
                                _SHARED_BASE
                                + peer % num_nodes
                                + slot_draw * num_nodes
                            )
                        try:
                            r = floats[pos]
                        except IndexError:
                            words = refill()
                            floats = rng._floats
                            pos = 0
                            r = floats[0]
                        pos += 1
                        is_write = r < shared_write_fraction
                    else:
                        if r < shared_or_stream:
                            line = stream_base + (
                                workload._stream_pos % _REGION
                            )
                            workload._stream_pos += 1
                        else:
                            try:
                                r = floats[pos]
                            except IndexError:
                                words = refill()
                                floats = rng._floats
                                pos = 0
                                r = floats[0]
                            pos += 1
                            if r < cold_fraction:
                                line = cold_base + (
                                    workload._cold_pos % cold_lines
                                )
                                workload._cold_pos += 1
                            elif hot_lines == 1:
                                # integers(0, 1) consumes no words.
                                line = private_base
                            else:
                                # Hot private line — the single most
                                # frequent bounded draw.
                                while True:
                                    if has32:
                                        has32 = False
                                        v = stash32
                                    else:
                                        try:
                                            word = words[pos]
                                        except IndexError:
                                            words = refill()
                                            floats = rng._floats
                                            pos = 0
                                            word = words[0]
                                        pos += 1
                                        stash32 = word >> 32
                                        has32 = True
                                        v = word & 0xFFFFFFFF
                                    m = v * hot_lines
                                    if (m & 0xFFFFFFFF) >= hot_threshold:
                                        break
                                line = private_base + (m >> 32)
                        try:
                            r = floats[pos]
                        except IndexError:
                            words = refill()
                            floats = rng._floats
                            pos = 0
                            r = floats[0]
                        pos += 1
                        is_write = r < write_fraction

                # -- memory issue (Core._issue_mem, fused) --------------
                state = states_get(line)
                if state is None:
                    # Invalid: a definite miss via the full controller.
                    if not mshr_allocate(line):
                        core._pending = Op(
                            kind=MEM, line=line, is_write=is_write
                        )
                        core._stall_line = None
                        core.state = STALLED
                        return
                    l1_access(line, is_write)
                    instr += 1
                    try:
                        r = floats[pos]
                    except IndexError:
                        words = refill()
                        floats = rng._floats
                        pos = 0
                        r = floats[0]
                    pos += 1
                    if r < blocking_fraction:
                        core._stall_line = line
                        core.state = STALLED
                        return
                    continue
                if state is S:
                    if is_write:
                        # Upgrade: a miss, but only counters + request.
                        if not mshr_allocate(line):
                            core._pending = Op(
                                kind=MEM, line=line, is_write=is_write
                            )
                            core._stall_line = None
                            core.state = STALLED
                            return
                        cache_touch(line)
                        c_upgrades.value += 1
                        l1_request(line, REQ_UPG)
                        # Read the ledger live: the coherence engine
                        # installs it after this loop is compiled.
                        ledger = l1.ledger
                        if ledger is not None:
                            ledger(S, S_MA)
                        states[line] = S_MA
                        instr += 1
                        try:
                            r = floats[pos]
                        except IndexError:
                            words = refill()
                            floats = rng._floats
                            pos = 0
                            r = floats[0]
                        pos += 1
                        if r < blocking_fraction:
                            core._stall_line = line
                            core.state = STALLED
                            return
                        continue
                    # Read hit: CacheArray.touch inlined (LRU + counts).
                    cache._clock = clock = cache._clock + 1
                    for way in sets[line % nsets]:
                        if way.line == line:
                            way.last_use = clock
                            cache.hits += 1
                            break
                    else:
                        cache.misses += 1
                    c_read_hits.value += 1
                    instr += 1
                    continue
                if state is E or state is M:
                    cache._clock = clock = cache._clock + 1
                    for way in sets[line % nsets]:
                        if way.line == line:
                            way.last_use = clock
                            cache.hits += 1
                            break
                    else:
                        cache.misses += 1
                    if is_write:
                        c_write_hits.value += 1
                        # No ledger call: E -> M and M -> M are both
                        # stable-to-stable (transient delta is zero).
                        states[line] = M
                    else:
                        c_read_hits.value += 1
                    instr += 1
                    continue
                # Transient ("z"): secondary access waits for the fill.
                core._pending = Op(kind=MEM, line=line, is_write=is_write)
                core._stall_line = line
                core.state = STALLED
                return
        finally:
            workload._ops_generated = count
            core.instructions += instr

    return issue


class _FlushingStatGroup(StatGroup):
    """A core stat group that settles the columnar ledger before reads.

    The engine accrues busy/stall/sync lazily; any consumer reading the
    counters through the group (metrics registry snapshots, golden
    tests) must see the settled values.  ``flush`` is idempotent.
    """

    def __init__(self, engine: "VectorCoreEngine", name: str):
        super().__init__(name)
        self._engine = engine

    def as_dict(self) -> dict:
        self._engine.flush()
        return super().as_dict()


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class VectorCoreEngine:
    """Batched cores phase over columnar per-node state.

    Owns the parallel arrays (accrual boundaries, pending bucket
    counts, state codes, hold/spin deadlines), the RUNNING set and the
    hold/spin heaps.  ``CmpSystem`` calls :meth:`core_phase` in place
    of the per-core tick loop, :meth:`next_core_event` for the cores'
    contribution to the fast-forward horizon, and :meth:`flush` before
    reading counters.  Skips need no per-core work at all: the lazy
    ledger charges jumped cycles at the next transition or flush.
    """

    def __init__(self, system):
        self._system = system
        n = system.config.num_nodes
        self.num_nodes = n
        self.cores: list[ColumnarCore] = []
        #: Exclusive cycle through which each node's counters are settled.
        self.until = np.zeros(n, dtype=np.int64)
        #: Unsettled busy/stall/sync tick counts per node.
        self.pending = np.zeros((n, NUM_BUCKETS), dtype=np.int64)
        #: Current bucket code per node (mirror of each core's state).
        self.codes = np.zeros(n, dtype=np.int64)
        #: Absolute deadline per node, _NEVER when not held/spinning.
        self.hold_at = np.full(n, _NEVER, dtype=np.int64)
        self.spin_at = np.full(n, _NEVER, dtype=np.int64)
        self._running: set[int] = set()
        self._worklist: list[int] = []  # sorted cache of _running
        self._running_dirty = True
        self._hold_heap: list[tuple[int, int]] = []
        self._spin_heap: list[tuple[int, int]] = []
        self._in_phase = False
        self._issues: Optional[list] = None  # prebound core._issue hooks

    # -- construction ----------------------------------------------------

    def stats_for(self, node: int) -> StatGroup:
        """The stat group a :class:`ColumnarCore` should be built with."""
        return _FlushingStatGroup(self, f"core.{node}")

    def register(self, core: ColumnarCore) -> None:
        assert core.node == len(self.cores), "register cores in node order"
        self.cores.append(core)
        self.codes[core.node] = BUCKET_CODE[core.state]
        if core.state is CoreState.RUNNING:
            self._running.add(core.node)

    # -- write-through state hook ---------------------------------------

    def on_state_change(
        self, core: ColumnarCore, old: CoreState, new: CoreState
    ) -> None:
        j = core.node
        now = self._system.cycle
        # A transition from the node's own action happens *during* its
        # tick: that tick belongs to the old state (the naive loop
        # counts before acting), so settle through now+1.  External
        # transitions (fills, signals) land before the cores phase, so
        # the node's tick at ``now`` already belongs to the new state.
        # During the phase only the acting node can transition (no
        # network path delivers to a core synchronously), so a single
        # in-phase flag is enough to tell the two apart.
        boundary = now + 1 if self._in_phase else now
        until = self.until
        settled = until[j]
        if boundary > settled:
            self.pending[j, BUCKET_CODE[old]] += boundary - settled
            until[j] = settled = boundary
        self.codes[j] = BUCKET_CODE[new]
        anchor = int(settled) if settled > now else now

        if old is CoreState.RUNNING:
            self._running.discard(j)
            self._running_dirty = True
        elif old is CoreState.LOCK_HOLD:
            self.hold_at[j] = _NEVER
        elif old in _SPIN_STATES:
            self.spin_at[j] = _NEVER

        if new is CoreState.RUNNING:
            self._running.add(j)
            self._running_dirty = True
        elif new is CoreState.LOCK_HOLD:
            release = hold_release_cycle(anchor, core._hold_left)
            self.hold_at[j] = release
            heappush(self._hold_heap, (release, j))
        elif new in _SPIN_STATES:
            poll = spin_poll_cycle(anchor, core._next_spin)
            self.spin_at[j] = poll
            heappush(self._spin_heap, (poll, j))

    # -- the cores phase -------------------------------------------------

    def core_phase(self, cycle: int) -> None:
        """Everything the naive per-core tick loop would do at ``cycle``."""
        due: Optional[list[int]] = None
        hold_heap = self._hold_heap
        if hold_heap and hold_heap[0][0] <= cycle:
            hold_at = self.hold_at
            while hold_heap and hold_heap[0][0] <= cycle:
                deadline, j = heappop(hold_heap)
                if hold_at[j] == deadline:
                    due = [j] if due is None else due + [j]
        spin_heap = self._spin_heap
        if spin_heap and spin_heap[0][0] <= cycle:
            spin_at = self.spin_at
            while spin_heap and spin_heap[0][0] <= cycle:
                deadline, j = heappop(spin_heap)
                if spin_at[j] == deadline:
                    due = [j] if due is None else due + [j]
        running = self._running
        if due is None:
            if not running:
                return
            # Cores run in multi-cycle bursts, so the sorted worklist is
            # usually identical cycle over cycle; resort only on churn.
            if self._running_dirty:
                self._worklist = sorted(running)
                self._running_dirty = False
            # Every member of a clean worklist is RUNNING (membership is
            # maintained by on_state_change) and stays RUNNING until its
            # own turn — nothing delivers to a core mid-phase — so the
            # per-core state dispatch below is redundant here.
            issues = self._issues
            if issues is None:
                issues = self._issues = [c._issue for c in self.cores]
            self._in_phase = True
            try:
                for j in self._worklist:
                    issues[j](cycle)
            finally:
                self._in_phase = False
            return
        worklist = sorted(running.union(due))
        cores = self.cores
        RUNNING = CoreState.RUNNING
        self._in_phase = True
        try:
            for j in worklist:
                core = cores[j]
                state = core._state_value
                if state is RUNNING:
                    core._issue(cycle)
                elif state is CoreState.LOCK_HOLD:
                    # The release tick.  The naive loop decremented every
                    # tick; the lazy countdown lands the same final value.
                    core._hold_left = (
                        0 if core._hold_left > 0 else core._hold_left - 1
                    )
                    core.state = CoreState.LOCK_RELEASE
                    core._sync_access(
                        SyncManager.lock_line(core._lock_id), True
                    )
                else:
                    # A spin poll (state is one of the two spin states).
                    self.spin_at[j] = _NEVER
                    core._spin(cycle)
                    if (
                        self.spin_at[j] == _NEVER
                        and core._state_value in _SPIN_STATES
                    ):
                        poll = core._next_spin
                        self.spin_at[j] = poll
                        heappush(spin_heap, (poll, j))
        finally:
            self._in_phase = False

    # -- fast-forward horizon (docs/performance.md) ----------------------

    def next_core_event(self, cycle: int) -> Optional[int]:
        """The cores' joint horizon: min over running/holds/polls.

        Matches the min over every naive ``Core.next_event`` exactly:
        a RUNNING node pins "now"; otherwise the earliest valid hold
        release or spin poll; ``None`` when every node is blocked on an
        external event.  Stale heap entries (the node left the state)
        are discarded lazily.
        """
        if self._running:
            return cycle
        horizon = None
        heap = self._hold_heap
        hold_at = self.hold_at
        while heap:
            deadline, j = heap[0]
            if hold_at[j] == deadline:
                horizon = deadline
                break
            heappop(heap)
        heap = self._spin_heap
        spin_at = self.spin_at
        while heap:
            deadline, j = heap[0]
            if spin_at[j] == deadline:
                if horizon is None or deadline < horizon:
                    horizon = deadline
                break
            heappop(heap)
        return horizon

    # -- settlement ------------------------------------------------------

    def flush(self) -> None:
        """Settle every node's lazy ticks into its real counters.

        Idempotent; called before any counter read (results, metrics
        snapshots).  Never called mid-tick, so the boundary is the
        current cycle (ticks at the current cycle have not happened).
        """
        accrue_columns(self.until, self.pending, self.codes, self._system.cycle)
        pending = self.pending
        for j in np.nonzero(pending.any(axis=1))[0]:
            core = self.cores[j]
            busy, stall, sync = pending[j]
            if busy:
                core.busy_cycles.add(int(busy))
            if stall:
                core.stall_cycles.add(int(stall))
            if sync:
                core.sync_cycles.add(int(sync))
        pending[:] = 0

    # -- invariants ------------------------------------------------------

    def audit(self) -> None:
        """Cross-check the columnar arrays against the scalar objects.

        Used by the scale smoke test: membership sets, bucket codes,
        deadline tokens and MSHR occupancy must all be consistent with
        the per-core object state the reference engine would hold.
        """
        now = self._system.cycle
        occupancy = np.fromiter(
            (core.mshr.in_use for core in self.cores),
            dtype=np.int64,
            count=self.num_nodes,
        )
        limit = self.cores[0].config.mshr_limit
        admitted = mshr_admit_mask(
            occupancy, limit, np.zeros(self.num_nodes, dtype=bool)
        )
        assert bool(np.all(occupancy <= limit)), "MSHR occupancy over limit"
        assert bool(np.all(admitted == (occupancy < limit)))
        for j, core in enumerate(self.cores):
            state = core._state_value
            assert (j in self._running) == (state is CoreState.RUNNING)
            assert self.codes[j] == BUCKET_CODE[state]
            assert (self.hold_at[j] != _NEVER) == (state is CoreState.LOCK_HOLD)
            assert (self.spin_at[j] != _NEVER) == (state in _SPIN_STATES)
            assert self.until[j] <= now + 1
