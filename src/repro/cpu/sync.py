"""Synchronization coordination: barriers and ll/sc-style locks.

The *traffic* of synchronization flows through the real coherence
protocol — spinning cores hold the sync line in S, an arrival/release
write invalidates them all at once, and the re-reads come back as a
burst of requests and replies (the "quasi-synchronized" packets of
Figure 9).  What this module adds is the *semantics* the paper's
binaries would provide: which write ends a barrier episode, who owns a
contended lock, and who must retry.

With §5.1's ll/sc subscription enabled, spinners do not spin at all:
they subscribe (a reserved confirmation mini-cycle at the home
directory) and block until the release arrives as a one-bit
confirmation-channel signal — the CMP adapter wires
:attr:`SyncManager.signal_release` to the FSOI confirmation channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["SyncManager", "SYNC_LINE_BASE"]

#: Synchronization variables live in their own address region so they
#: never alias workload data lines.
SYNC_LINE_BASE = 1 << 40


@dataclass
class _LockState:
    holder: int = -1
    generation: int = 0
    waiters: set[int] = field(default_factory=set)


class SyncManager:
    """Global coordinator for one CMP's barrier and lock episodes."""

    def __init__(self, num_nodes: int, subscription: bool = False):
        self.num_nodes = num_nodes
        self.subscription = subscription
        #: Hooks the CMP system installs to deliver §5.1 release signals
        #: over the confirmation channel (subscription mode).
        self.on_barrier_release: Optional[Callable[[int], None]] = None
        self.on_lock_release: Optional[Callable[[int, list[int]], None]] = None
        self._barrier_epoch = 0
        self._barrier_arrived: set[int] = set()
        self._locks: dict[int, _LockState] = {}
        self.barriers_completed = 0
        self.lock_acquisitions = 0
        self.lock_retries = 0

    # -- addresses ---------------------------------------------------------

    @staticmethod
    def barrier_line() -> int:
        return SYNC_LINE_BASE

    @staticmethod
    def lock_line(lock_id: int) -> int:
        return SYNC_LINE_BASE + 1 + lock_id

    # -- barriers ------------------------------------------------------------

    def barrier_arrive(self, node: int) -> int:
        """Register arrival; returns the epoch the node is waiting on."""
        epoch = self._barrier_epoch
        self._barrier_arrived.add(node)
        if len(self._barrier_arrived) == self.num_nodes:
            self._barrier_arrived.clear()
            self._barrier_epoch += 1
            self.barriers_completed += 1
            if self.on_barrier_release is not None:
                self.on_barrier_release(epoch)
        return epoch

    def barrier_released(self, epoch: int) -> bool:
        return self._barrier_epoch > epoch

    # -- locks -----------------------------------------------------------------

    def _lock(self, lock_id: int) -> _LockState:
        state = self._locks.get(lock_id)
        if state is None:
            state = _LockState()
            self._locks[lock_id] = state
        return state

    def try_acquire(self, lock_id: int, node: int) -> bool:
        """Attempt the store-conditional; True when the lock is taken."""
        state = self._lock(lock_id)
        if state.holder == -1:
            state.holder = node
            state.waiters.discard(node)
            self.lock_acquisitions += 1
            return True
        state.waiters.add(node)
        self.lock_retries += 1
        return False

    def release(self, lock_id: int, node: int) -> list[int]:
        """Release; returns the waiters to notify (they retry acquire)."""
        state = self._lock(lock_id)
        if state.holder != node:
            raise RuntimeError(
                f"node {node} released lock {lock_id} held by {state.holder}"
            )
        state.holder = -1
        state.generation += 1
        waiters = sorted(state.waiters)
        state.waiters.clear()
        if self.on_lock_release is not None:
            self.on_lock_release(lock_id, waiters)
        return waiters

    def lock_generation(self, lock_id: int) -> int:
        return self._lock(lock_id).generation

    def holder(self, lock_id: int) -> int:
        return self._lock(lock_id).holder
