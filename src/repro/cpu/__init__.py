"""CPU-side substrate: caches, cores, memory controllers, synchronization.

The paper models DEC Alpha 21264 out-of-order cores in an adapted
SimpleScalar.  Per DESIGN.md's substitution table, we model the *memory
side* of the core faithfully (L1 arrays and MSHRs, blocking behaviour of
dependent misses, address-interleaved bandwidth-limited memory
controllers, ll/sc-style lock and barrier episodes) and abstract the
pipeline into a configurable non-memory IPC — the interconnect results
depend on the request process, not on the pipeline internals.
"""

from repro.util.cache import CacheArray
from repro.cpu.core import Core, CoreConfig
from repro.cpu.memctrl import MemoryController, MemoryConfig
from repro.cpu.mshr import MshrFile
from repro.cpu.sync import SyncManager

__all__ = [
    "CacheArray",
    "Core",
    "CoreConfig",
    "MemoryController",
    "MemoryConfig",
    "MshrFile",
    "SyncManager",
]
