"""Miss status holding registers.

A fixed-size file of outstanding misses per core (the paper's simulator
adds MSHRs and non-blocking memory controllers, §6).  A full file makes
further misses block the core — one of the two ways a core stalls in our
timing model (the other is a dependent load).
"""

from __future__ import annotations

__all__ = ["MshrFile"]


class MshrFile:
    """Tracks lines with in-flight misses; bounded capacity."""

    __slots__ = ("limit", "_lines", "allocation_failures", "ledger")

    def __init__(self, limit: int = 8):
        if limit < 1:
            raise ValueError(f"need at least one MSHR: {limit}")
        self.limit = limit
        self._lines: set[int] = set()
        self.allocation_failures = 0
        #: Columnar-engine ledger hook (repro.coherence.vector): called
        #: with the occupancy delta (+1 allocate, -1 release) so the
        #: engine's MSHR-completion column stays write-through.  ``None``
        #: (the default) keeps the reference path cost at one check.
        self.ledger = None

    def contains(self, line: int) -> bool:
        return line in self._lines

    def allocate(self, line: int) -> bool:
        """Reserve an MSHR for ``line``; False when the file is full.

        Allocating a line that already has an MSHR is a merge (secondary
        miss) and succeeds without consuming a new register.
        """
        if line in self._lines:
            return True
        if len(self._lines) >= self.limit:
            self.allocation_failures += 1
            return False
        self._lines.add(line)
        if self.ledger is not None:
            self.ledger(1)
        return True

    def release(self, line: int) -> None:
        if line in self._lines:
            self._lines.discard(line)
            if self.ledger is not None:
                self.ledger(-1)

    @property
    def in_use(self) -> int:
        return len(self._lines)

    @property
    def full(self) -> bool:
        return len(self._lines) >= self.limit
