"""Address-interleaved, bandwidth-limited memory controllers.

Table 3: 200-cycle memory latency, 4 channels in the 16-node system and
8 in the 64-node system; Table 4 studies 8.8 GB/s versus 52.8 GB/s of
channel bandwidth.  Each controller owns one channel: requests queue,
the channel is occupied for ``line_bytes / bytes_per_cycle`` per
transfer, and a read's data returns ``latency`` cycles plus queuing
after arrival.  Controllers are non-blocking (any number of requests may
be queued) — the bound is bandwidth, not concurrency.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.coherence.messages import CoherenceMessage, MsgType
from repro.util.stats import StatGroup

__all__ = ["MemoryConfig", "MemoryController"]


@dataclass(frozen=True)
class MemoryConfig:
    """One channel's parameters.

    ``bandwidth_bytes_per_cycle`` derives from GB/s at the 3.3 GHz core
    clock: 8.8 GB/s ~ 2.67 B/cycle; 52.8 GB/s ~ 16 B/cycle.
    """

    latency: int = 200
    bandwidth_bytes_per_cycle: float = 8.8 / 3.3
    line_bytes: int = 32

    @classmethod
    def from_gbps(cls, gbytes_per_second: float, core_ghz: float = 3.3,
                  latency: int = 200, line_bytes: int = 32) -> "MemoryConfig":
        """Build from a GB/s figure (Table 4: 8.8 or 52.8).

        >>> MemoryConfig.from_gbps(8.8).occupancy_cycles
        12
        """
        return cls(
            latency=latency,
            bandwidth_bytes_per_cycle=gbytes_per_second / core_ghz,
            line_bytes=line_bytes,
        )

    @property
    def occupancy_cycles(self) -> int:
        """Channel cycles consumed per line transfer."""
        return max(1, math.ceil(self.line_bytes / self.bandwidth_bytes_per_cycle))


class MemoryController:
    """One memory channel attached to a node.

    Driven by :meth:`handle` (MEM_READ / MEM_WRITE messages) and
    :meth:`tick`; replies (MEM_ACK) go out through the supplied ``send``.
    """

    __slots__ = (
        "node", "send", "config", "_queue", "_busy_until", "stats",
        "reads", "writes", "queue_wait", "_arrival", "_occupancy",
        "_reply_delay", "ledger",
    )

    def __init__(
        self,
        node: int,
        send: Callable[[CoherenceMessage, int], None],
        config: Optional[MemoryConfig] = None,
        stats: Optional[StatGroup] = None,
    ):
        self.node = node
        self.send = send
        self.config = config or MemoryConfig()
        self._queue: deque[CoherenceMessage] = deque()
        self._busy_until = 0
        stats = stats or StatGroup(f"mem.{node}")
        self.stats = stats
        self.reads = stats.counter("reads")
        self.writes = stats.counter("writes")
        self.queue_wait = stats.latency("queue_wait")
        self._arrival: dict[int, int] = {}
        # tick() runs every cycle for every controller; hoist the two
        # config-derived constants out of the per-transfer path.
        self._occupancy = self.config.occupancy_cycles
        self._reply_delay = self.config.latency + self._occupancy
        #: Columnar-engine ledger hook (repro.coherence.vector): called
        #: with the queue-depth delta (+1 enqueue, -1 transfer start) so
        #: the engine's channel-backlog column stays write-through.
        self.ledger = None

    def handle(self, msg: CoherenceMessage, cycle: int) -> None:
        if msg.mtype not in (MsgType.MEM_READ, MsgType.MEM_WRITE):
            raise ValueError(f"memory controller got {msg}")
        self._arrival[msg.uid] = cycle
        self._queue.append(msg)
        if self.ledger is not None:
            self.ledger(1)

    def tick(self, cycle: int) -> None:
        """Start the next transfer when the channel frees up."""
        if not self._queue or self._busy_until > cycle:
            return
        msg = self._queue.popleft()
        if self.ledger is not None:
            self.ledger(-1)
        self.queue_wait.record(cycle - self._arrival.pop(msg.uid))
        self._busy_until = cycle + self._occupancy
        if msg.mtype is MsgType.MEM_WRITE:
            self.writes.add()
            return  # fire-and-forget
        self.reads.add()
        reply_delay = self._reply_delay
        self.send(
            CoherenceMessage(
                mtype=MsgType.MEM_ACK,
                line=msg.line,
                sender=self.node,
                dest=msg.sender,
                requester=msg.requester,
            ),
            reply_delay,
        )

    def next_event(self, cycle: int) -> Optional[int]:
        """Fast-forward horizon: next cycle a queued transfer can start.

        ``None`` when idle — new work arrives via :meth:`handle`, which
        is calendar-driven and carries its own horizon.
        """
        if not self._queue:
            return None
        return max(cycle, self._busy_until)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def quiescent(self, cycle: int) -> bool:
        return not self._queue and self._busy_until <= cycle
