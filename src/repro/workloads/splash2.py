"""Synthetic signatures of the paper's 16 applications.

The paper evaluates SPLASH2 (barnes, cholesky, fmm, fft, lu, ocean,
radiosity, radix, raytrace, water-spatial) plus em3d, ilink, jacobi,
mp3d, shallow and tsp on DEC Alpha binaries.  We cannot run those
binaries; per DESIGN.md each application is replaced by a *signature* —
a parameterized memory-operation generator reproducing its published
traffic character:

* **miss rate** via a hot-set / cold-stream split: private accesses hit
  a small always-resident hot set except for a controlled cold fraction
  that cycles a region far larger than the L1 (an L1 miss that hits in
  L2 after warm-up).  Paper §6: the L1 is deliberately scaled so miss
  rates land in the 0.8%–15.6% range, average 4.8%;
* **communication intensity** via the fraction of accesses landing in a
  globally shared pool (read-write sharing -> invalidations, forwards);
* **memory pressure** via a streaming fraction whose addresses never
  repeat (every access is a compulsory L2/memory miss);
* **synchronization** via barrier and lock-episode intervals (the paper
  notes synchronization is ~a quarter of traffic in the 64-node mesh).

The absolute values are literature-informed estimates; what the
reproduction relies on is the *spread* — memory/communication-bound
apps (em3d, mp3d, radix, ocean) versus compute-bound ones (lu,
water-spatial, tsp) — which drives the per-application speedup spread
of Figures 6/7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.core import Op, OpKind

__all__ = ["AppSignature", "AppWorkload", "APPLICATIONS", "signature"]

#: Address-region bases (line numbers).  Regions never overlap: private
#: and streaming regions are per-node, the shared pool is global.
_PRIVATE_BASE = 1 << 22
_STREAM_BASE = 1 << 32
_SHARED_BASE = 1 << 38
_REGION = 1 << 20  # lines per node-region


@dataclass(frozen=True)
class AppSignature:
    """The traffic character of one application."""

    name: str
    label: str                    # the paper's x-axis abbreviation
    mem_fraction: float = 0.35    # memory accesses per instruction
    write_fraction: float = 0.30
    shared_fraction: float = 0.08  # of memory accesses
    #: Write fraction *within the shared pool*.  Kept low by default:
    #: real applications mostly read shared data, so read-shared lines
    #: replicate in S state and hit; the writes are what cause
    #: invalidations and ping-pong.
    shared_write_fraction: float = 0.10
    stream_fraction: float = 0.0   # of memory accesses (compulsory misses)
    #: Fraction of *private* accesses that miss the L1 (cold accesses to
    #: a region far larger than the L1 but warm in the L2).
    private_cold_fraction: float = 0.03
    hot_lines: int = 64            # always-resident private hot set
    cold_lines: int = 4096         # cold region cycled by cold accesses
    shared_pool_lines: int = 128
    #: Spatial communication pattern of the shared pool: "uniform"
    #: (random peers), "neighbor" (stencil codes exchange with mesh
    #: neighbours -> locality the electrical mesh exploits), or
    #: "butterfly" (FFT-style exchange with node XOR 2^stage).
    comm_pattern: str = "uniform"
    barrier_interval: int = 0      # instructions between barriers (0 = none)
    lock_interval: int = 0         # instructions between lock episodes
    lock_count: int = 8
    lock_hold_cycles: int = 30

    def __post_init__(self) -> None:
        for frac in (
            self.mem_fraction,
            self.write_fraction,
            self.shared_fraction,
            self.stream_fraction,
        ):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"fraction out of [0,1] in {self.name}")
        if self.shared_fraction + self.stream_fraction > 1.0:
            raise ValueError(f"shared+stream exceed 1 in {self.name}")
        if not 0.0 <= self.private_cold_fraction <= 1.0:
            raise ValueError(f"cold fraction out of [0,1] in {self.name}")
        if self.hot_lines < 1 or self.cold_lines < 1 or self.shared_pool_lines < 1:
            raise ValueError(f"empty pool in {self.name}")
        if self.comm_pattern not in ("uniform", "neighbor", "butterfly"):
            raise ValueError(
                f"unknown comm pattern {self.comm_pattern!r} in {self.name}"
            )

    @property
    def has_sync(self) -> bool:
        return self.barrier_interval > 0 or self.lock_interval > 0

    def with_miss_scale(self, factor: float) -> "AppSignature":
        """A copy with all miss sources scaled by ``factor``.

        Used for the paper's L1-size sensitivity (§7.1): a 32 KB L1
        lowers the average miss rate from 4.8% to 3.0%, i.e. a factor
        of ~0.63.  In our substitution the signature *is* the measured
        miss behaviour, so cache-size studies scale it directly.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        from dataclasses import replace

        return replace(
            self,
            shared_fraction=min(1.0, self.shared_fraction * factor),
            stream_fraction=min(1.0, self.stream_fraction * factor),
            private_cold_fraction=min(1.0, self.private_cold_fraction * factor),
        )


def _make(
    name: str,
    label: str,
    target_miss: float,
    comm_share: float,
    mem_share: float = 0.04,
    **kwargs,
) -> AppSignature:
    """Build a signature from observable targets.

    ``target_miss`` is the overall L1 miss rate (per memory access);
    ``comm_share`` the fraction of those misses that are coherence
    misses (shared-pool accesses — which, being written by other cores,
    almost always miss); ``mem_share`` the fraction that are compulsory
    streaming misses continuing to memory.  The private cold fraction
    absorbs the remainder:

        target = shared_frac * SHARED_MISS + stream_frac + private_frac * cold

    with SHARED_MISS ~ 0.9 (a shared line is usually re-invalidated
    between one core's visits).
    """
    if not 0.0 < target_miss < 1.0:
        raise ValueError(f"miss-rate target out of range: {target_miss}")
    if comm_share + mem_share > 1.0:
        raise ValueError(f"shares exceed 1 in {name}")
    shared_miss_rate = 0.9
    shared_fraction = comm_share * target_miss / shared_miss_rate
    stream_fraction = mem_share * target_miss
    private_fraction = 1.0 - shared_fraction - stream_fraction
    cold = target_miss * (1.0 - comm_share - mem_share) / private_fraction
    return AppSignature(
        name,
        label,
        shared_fraction=shared_fraction,
        stream_fraction=stream_fraction,
        private_cold_fraction=min(1.0, max(0.0, cold)),
        **kwargs,
    )


#: One signature per paper application, keyed by the figure label.
#: target_miss spans the paper's 0.8%-15.6% range (avg ~4.8%);
#: comm_share and mem_share encode each application's published
#: character (communication-bound vs memory-bound vs compute-bound).
APPLICATIONS: dict[str, AppSignature] = {
    sig.label: sig
    for sig in [
        _make("barnes", "ba", 0.030, comm_share=0.30,
              barrier_interval=8000, lock_interval=2500, lock_count=16),
        _make("cholesky", "ch", 0.040, comm_share=0.25,
              lock_interval=1800, lock_count=12),
        _make("fmm", "fmm", 0.025, comm_share=0.30,
              barrier_interval=9000, lock_interval=4000),
        _make("fft", "fft", 0.055, comm_share=0.15, mem_share=0.15, comm_pattern="butterfly",
              barrier_interval=12000),
        _make("lu", "lu", 0.018, comm_share=0.20,
              barrier_interval=10000),
        _make("ocean", "oc", 0.075, comm_share=0.35, mem_share=0.20, comm_pattern="neighbor",
              barrier_interval=5000),
        _make("radiosity", "ro", 0.030, comm_share=0.40,
              lock_interval=1200, lock_count=24, lock_hold_cycles=40),
        _make("radix", "rx", 0.095, comm_share=0.30, mem_share=0.25,
              barrier_interval=7000),
        _make("raytrace", "ray", 0.050, comm_share=0.45,
              lock_interval=900, lock_count=8, lock_hold_cycles=25),
        _make("water-spatial", "ws", 0.009, comm_share=0.30,
              barrier_interval=11000, lock_interval=5000),
        _make("em3d", "em", 0.085, comm_share=0.60, mem_share=0.10,
              barrier_interval=4000),
        _make("ilink", "ilink", 0.040, comm_share=0.30,
              barrier_interval=9000),
        _make("jacobi", "ja", 0.050, comm_share=0.25, comm_pattern="neighbor",
              barrier_interval=5000),
        _make("mp3d", "mp", 0.150, comm_share=0.50, mem_share=0.10,
              barrier_interval=6000),
        _make("shallow", "sh", 0.065, comm_share=0.25, mem_share=0.20, comm_pattern="neighbor",
              barrier_interval=6000),
        _make("tsp", "tsp", 0.020, comm_share=0.30,
              lock_interval=3000, lock_count=4, lock_hold_cycles=50),
    ]
}


def signature(label: str) -> AppSignature:
    """Look up a signature by its figure label (e.g. ``"oc"``).

    >>> signature("mp").name
    'mp3d'
    """
    try:
        return APPLICATIONS[label]
    except KeyError:
        raise KeyError(
            f"unknown application {label!r}; known: {sorted(APPLICATIONS)}"
        ) from None


#: WORK and BARRIER ops carry no payload and Op is frozen, so every
#: stream shares one instance of each (op construction is the hottest
#: allocation in the simulator — two thirds of all instructions).
_WORK_OP = Op(kind=OpKind.WORK)
_BARRIER_OP = Op(kind=OpKind.BARRIER)


class AppWorkload:
    """Per-core operation stream for one application signature."""

    def __init__(self, signature: AppSignature, node: int, num_nodes: int):
        self.signature = signature
        self.node = node
        self.num_nodes = num_nodes
        self._ops_generated = 0
        self._stream_pos = 0
        self._cold_pos = 0
        self._butterfly_stage = 0
        self._private_base = _PRIVATE_BASE + node * _REGION
        self._cold_base = self._private_base + signature.hot_lines
        self._stream_base = _STREAM_BASE + node * _REGION

    def next_op(self, rng: np.random.Generator) -> Op:
        """The next instruction for this core."""
        sig = self.signature
        count = self._ops_generated + 1
        self._ops_generated = count

        interval = sig.barrier_interval
        if interval and count % interval == 0:
            return _BARRIER_OP
        interval = sig.lock_interval
        if interval and count % interval == 0:
            return Op(
                kind=OpKind.LOCK,
                lock_id=int(rng.integers(0, sig.lock_count)),
                hold_cycles=sig.lock_hold_cycles,
            )
        if rng.random() >= sig.mem_fraction:
            return _WORK_OP
        line, shared = self._pick_line(rng)
        write_fraction = (
            sig.shared_write_fraction if shared else sig.write_fraction
        )
        return Op(
            kind=OpKind.MEM,
            line=line,
            is_write=bool(rng.random() < write_fraction),
        )

    def reuse_lines(self) -> range:
        """This core's private reuse region (for L2 warm start)."""
        return range(
            self._private_base,
            self._cold_base + self.signature.cold_lines,
        )

    def shared_lines(self) -> range:
        """The global shared pool (same for every core)."""
        return range(
            _SHARED_BASE, _SHARED_BASE + self.signature.shared_pool_lines
        )

    def _pick_line(self, rng: np.random.Generator) -> tuple[int, bool]:
        """Returns ``(line, is_shared)``."""
        sig = self.signature
        r = rng.random()
        if r < sig.shared_fraction:
            return self._pick_shared(rng), True
        if r < sig.shared_fraction + sig.stream_fraction:
            line = self._stream_base + (self._stream_pos % _REGION)
            self._stream_pos += 1
            return line, False
        if rng.random() < sig.private_cold_fraction:
            # A cold access: cycles a region much larger than the L1, so
            # it always misses the L1 but (after warm-up) hits the L2.
            line = self._cold_base + (self._cold_pos % sig.cold_lines)
            self._cold_pos += 1
            return line, False
        return (
            self._private_base + int(rng.integers(0, sig.hot_lines)),
            False,
        )

    def _pick_shared(self, rng: np.random.Generator) -> int:
        """A shared-pool line, spatially biased by the comm pattern.

        Lines are home-interleaved (home = line mod N), so targeting a
        peer means choosing lines whose home is that peer: stencil codes
        exchange with mesh neighbours (1-hop traffic the electrical mesh
        serves cheaply), butterfly codes with node XOR 2^stage.
        """
        sig = self.signature
        pool = sig.shared_pool_lines
        if sig.comm_pattern == "uniform":
            return _SHARED_BASE + int(rng.integers(0, pool))
        peer = self._comm_peer(rng)
        # Lines in the pool whose home is `peer`: peer, peer+N, peer+2N...
        stride = self.num_nodes
        slots = max(1, pool // stride)
        offset = int(rng.integers(0, slots))
        return _SHARED_BASE + (peer % stride) + offset * stride

    def _comm_peer(self, rng: np.random.Generator) -> int:
        sig = self.signature
        n = self.num_nodes
        if sig.comm_pattern == "butterfly":
            stage = self._butterfly_stage
            self._butterfly_stage = (stage + 1) % max(1, n.bit_length() - 1)
            return self.node ^ (1 << stage)
        # "neighbor": a mesh neighbour (or self for boundary spill).
        side = int(round(n ** 0.5))
        x, y = self.node % side, self.node // side
        candidates = []
        if x > 0:
            candidates.append(self.node - 1)
        if x < side - 1:
            candidates.append(self.node + 1)
        if y > 0:
            candidates.append(self.node - side)
        if y < side - 1:
            candidates.append(self.node + side)
        return candidates[int(rng.integers(0, len(candidates)))]
