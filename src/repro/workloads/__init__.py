"""Workload generation.

Two layers:

* :mod:`repro.workloads.traffic` — packet-level synthetic traffic
  (Bernoulli/uniform, hotspot, transpose, bursts) used to characterize
  the raw networks (Figure 3's Monte-Carlo points, stress tests).
* :mod:`repro.workloads.splash2` — application-level synthetic
  signatures of the paper's 16 benchmarks (SPLASH2 + em3d, ilink,
  jacobi, mp3d, shallow, tsp), driving the full CMP simulator.  See
  DESIGN.md for the substitution rationale (we cannot run DEC Alpha
  binaries; the generators reproduce each application's memory-traffic
  character instead).
"""

from repro.workloads.splash2 import APPLICATIONS, AppSignature, AppWorkload, signature
from repro.workloads.trace import TraceWorkload, parse_trace, record_trace
from repro.workloads.traffic import (
    BernoulliTraffic,
    TrafficDriver,
    TrafficPattern,
    hotspot_pattern,
    transpose_pattern,
    uniform_pattern,
)

__all__ = [
    "APPLICATIONS",
    "AppSignature",
    "AppWorkload",
    "signature",
    "TraceWorkload",
    "parse_trace",
    "record_trace",
    "BernoulliTraffic",
    "TrafficDriver",
    "TrafficPattern",
    "hotspot_pattern",
    "transpose_pattern",
    "uniform_pattern",
]
