"""Trace-driven workloads.

Besides the synthetic signatures, cores can replay an explicit
operation trace — either recorded from a synthetic run (for exact
regression baselines) or produced externally (e.g. converted from a
real application's memory trace).

Format: one operation per line, whitespace-separated:

====================  ==========================================
``W``                 one non-memory instruction
``R <line>``          load from cache line ``<line>`` (hex or dec)
``S <line>``          store to cache line
``B``                 barrier episode
``L <id> <hold>``     lock episode: lock ``<id>``, hold ``<hold>`` cycles
``# ...``             comment
====================  ==========================================

A :class:`TraceWorkload` replays the trace once and then idles (WORK
ops), so a fixed-cycle run past the end of a short trace is safe.
:func:`record_trace` captures any other workload's stream into a file,
giving a deterministic, shareable snapshot.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

import numpy as np

from repro.cpu.core import Op, OpKind

__all__ = ["TraceWorkload", "parse_trace", "format_op", "record_trace"]


def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def parse_trace(lines: Iterable[str]) -> list[Op]:
    """Parse trace lines into operations; raises on malformed input."""
    ops: list[Op] = []
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        fields = text.split()
        kind = fields[0].upper()
        try:
            if kind == "W" and len(fields) == 1:
                ops.append(Op(kind=OpKind.WORK))
            elif kind in ("R", "S") and len(fields) == 2:
                ops.append(
                    Op(
                        kind=OpKind.MEM,
                        line=_parse_int(fields[1]),
                        is_write=(kind == "S"),
                    )
                )
            elif kind == "B" and len(fields) == 1:
                ops.append(Op(kind=OpKind.BARRIER))
            elif kind == "L" and len(fields) == 3:
                ops.append(
                    Op(
                        kind=OpKind.LOCK,
                        lock_id=_parse_int(fields[1]),
                        hold_cycles=_parse_int(fields[2]),
                    )
                )
            else:
                raise ValueError("unrecognized record")
        except ValueError as error:
            raise ValueError(f"trace line {lineno}: {text!r} ({error})") from None
    return ops


def format_op(op: Op) -> str:
    """Inverse of :func:`parse_trace` for one operation."""
    if op.kind is OpKind.WORK:
        return "W"
    if op.kind is OpKind.MEM:
        return f"{'S' if op.is_write else 'R'} {op.line:#x}"
    if op.kind is OpKind.BARRIER:
        return "B"
    return f"L {op.lock_id} {op.hold_cycles}"


class TraceWorkload:
    """Replays a fixed operation sequence, then idles.

    Parameters
    ----------
    source:
        A path to a trace file, or an iterable of already-parsed ops.
    """

    def __init__(self, source: Union[str, Path, Iterable[Op]]):
        if isinstance(source, (str, Path)):
            with open(source) as handle:
                self.ops = parse_trace(handle)
        else:
            self.ops = list(source)
        self._position = 0
        self.replays_exhausted = False

    def next_op(self, rng: np.random.Generator) -> Op:
        if self._position >= len(self.ops):
            self.replays_exhausted = True
            return Op(kind=OpKind.WORK)
        op = self.ops[self._position]
        self._position += 1
        return op

    @property
    def remaining(self) -> int:
        return max(0, len(self.ops) - self._position)

    def reset(self) -> None:
        self._position = 0
        self.replays_exhausted = False


def record_trace(
    workload, count: int, path: Union[str, Path], seed: int = 0
) -> list[Op]:
    """Capture ``count`` operations from any workload into a trace file.

    Returns the recorded operations.  The workload's own RNG draws come
    from a fresh generator seeded with ``seed``, so recordings are
    reproducible.
    """
    if count < 1:
        raise ValueError(f"need at least one operation: {count}")
    rng = np.random.default_rng(seed)
    ops = [workload.next_op(rng) for _ in range(count)]
    with open(path, "w") as handle:
        handle.write("# repro trace v1\n")
        for op in ops:
            handle.write(format_op(op) + "\n")
    return ops
