"""Packet-level synthetic traffic for characterizing raw networks.

A :class:`TrafficPattern` maps a source node to a destination
distribution; :class:`BernoulliTraffic` makes every node offer a packet
with a fixed per-slot probability (the ``p`` of Figure 3); a
:class:`TrafficDriver` pushes any generator into any
:class:`repro.net.Interconnect` and runs the clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.net.interface import Interconnect
from repro.net.packet import LaneKind, Packet
from repro.util.rng import RngHub

__all__ = [
    "TrafficPattern",
    "uniform_pattern",
    "hotspot_pattern",
    "transpose_pattern",
    "BernoulliTraffic",
    "TrafficDriver",
]

#: Maps (rng, src, num_nodes) -> destination node (never src).
TrafficPattern = Callable[[np.random.Generator, int, int], int]


def uniform_pattern(rng: np.random.Generator, src: int, num_nodes: int) -> int:
    """Uniform random destination over all other nodes."""
    dst = int(rng.integers(0, num_nodes - 1))
    return dst if dst < src else dst + 1


def hotspot_pattern(
    hotspot: int = 0, fraction: float = 0.3
) -> TrafficPattern:
    """A fraction of traffic converges on one node; the rest is uniform.

    >>> pattern = hotspot_pattern(hotspot=2, fraction=1.0)
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"hotspot fraction out of [0,1]: {fraction}")

    def pattern(rng: np.random.Generator, src: int, num_nodes: int) -> int:
        if src != hotspot and rng.random() < fraction:
            return hotspot
        return uniform_pattern(rng, src, num_nodes)

    return pattern


def transpose_pattern(rng: np.random.Generator, src: int, num_nodes: int) -> int:
    """Matrix-transpose permutation traffic (src XOR-reversed)."""
    dst = (num_nodes - 1) - src
    if dst == src:  # middle node of an odd count: fall back to uniform
        return uniform_pattern(rng, src, num_nodes)
    return dst


@dataclass
class BernoulliTraffic:
    """Every node offers a packet with probability ``p`` per *slot*.

    ``slot_cycles`` spaces the offers so ``p`` is per-slot (Figure 3's
    x-axis is per-meta-slot transmission probability).  ``data_fraction``
    of packets are data packets, the rest meta.
    """

    p: float
    slot_cycles: int = 2
    data_fraction: float = 0.0
    pattern: TrafficPattern = uniform_pattern
    expects_reply_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"offer probability out of [0,1]: {self.p}")
        if not 0.0 <= self.data_fraction <= 1.0:
            raise ValueError(f"data fraction out of [0,1]: {self.data_fraction}")

    def offers(
        self, rng: np.random.Generator, cycle: int, num_nodes: int
    ) -> list[Packet]:
        """Packets offered network-wide at ``cycle`` (empty off-slot)."""
        if cycle % self.slot_cycles != 0:
            return []
        out = []
        for src in range(num_nodes):
            if rng.random() >= self.p:
                continue
            dst = self.pattern(rng, src, num_nodes)
            lane = (
                LaneKind.DATA
                if rng.random() < self.data_fraction
                else LaneKind.META
            )
            expects = (
                lane is LaneKind.META
                and rng.random() < self.expects_reply_fraction
            )
            out.append(
                Packet(src=src, dst=dst, lane=lane, expects_data_reply=expects)
            )
        return out


class TrafficDriver:
    """Runs a traffic generator against an interconnect.

    Offers that the network refuses (full source queue) are dropped and
    counted — for open-loop characterization that is the right model
    (the offered load is the independent variable).
    """

    def __init__(
        self,
        network: Interconnect,
        traffic: BernoulliTraffic,
        rng: Optional[RngHub] = None,
        seed: int = 0,
    ):
        self.network = network
        self.traffic = traffic
        hub = rng if rng is not None else RngHub(seed)
        self._rng = hub.stream("traffic")
        self.offered = 0
        self.dropped = 0

    def run(self, cycles: int, drain: int = 2000) -> None:
        """Drive for ``cycles`` cycles, then tick up to ``drain`` more to
        let in-flight packets finish."""
        cycle = 0
        for cycle in range(cycles):
            for packet in self.traffic.offers(
                self._rng, cycle, self.network.num_nodes
            ):
                self.offered += 1
                if not self.network.try_send(packet, cycle):
                    self.dropped += 1
            self.network.tick(cycle)
        for extra in range(drain):
            if self.network.quiescent():
                break
            self.network.tick(cycles + extra)
