"""Coherence message vocabulary and its network-packet mapping.

Message types follow Table 2's event columns.  Anything carrying a cache
line (data replies, writebacks, acks-with-data from an M owner) travels
as a 360-bit data packet; requests, invalidations, downgrades and plain
acks are 72-bit meta packets (Table 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto

from repro.net.packet import LaneKind

__all__ = ["MsgType", "CoherenceMessage", "make_message"]

_message_ids = itertools.count()


class MsgType(Enum):
    """Every message exchanged by L1s, directories and memory."""

    # L1 -> directory
    REQ_SH = auto()       # read in shared mode
    REQ_EX = auto()       # read in exclusive mode
    REQ_UPG = auto()      # upgrade S -> M
    WRITEBACK = auto()    # eviction of an M line (carries data)
    WB_ANNOUNCE = auto()  # §5.2 split-transaction writeback announcement
    INV_ACK = auto()      # invalidation acknowledgment
    INV_ACK_DATA = auto()  # invalidation ack from an M owner (carries data)
    DWG_ACK = auto()      # downgrade acknowledgment
    DWG_ACK_DATA = auto()  # downgrade ack from an M owner (carries data)
    # directory -> L1
    DATA_S = auto()       # data reply, shared
    DATA_E = auto()       # data reply, exclusive
    DATA_M = auto()       # data reply, modified (write permission)
    EXC_ACK = auto()      # upgrade granted, no data needed
    INV = auto()          # invalidate
    DWG = auto()          # downgrade to shared
    RETRY = auto()        # NACK: resend later (fetch-deadlock avoidance)
    # directory <-> memory controller
    MEM_READ = auto()     # fetch line from memory
    MEM_WRITE = auto()    # write line back to memory (carries data)
    MEM_ACK = auto()      # memory read completion (carries data)

    # ``carries_data`` / ``lane`` / ``is_request`` and the ``pkt_*``
    # packetization flags are precomputed member attributes (filled in
    # below) rather than properties: message classification runs once
    # per send *and* per delivery on the dispatch hot path, where a
    # plain attribute load beats a descriptor call plus frozenset
    # membership test.
    carries_data: bool
    lane: LaneKind
    is_request: bool
    pkt_is_reply: bool
    pkt_is_writeback: bool
    pkt_is_memory: bool
    pkt_expects_data: bool


_DATA_CARRYING = frozenset(
    {
        MsgType.WRITEBACK,
        MsgType.INV_ACK_DATA,
        MsgType.DWG_ACK_DATA,
        MsgType.DATA_S,
        MsgType.DATA_E,
        MsgType.DATA_M,
        MsgType.MEM_WRITE,
        MsgType.MEM_ACK,
    }
)

for _member in MsgType:
    _member.carries_data = _member in _DATA_CARRYING
    _member.lane = LaneKind.DATA if _member.carries_data else LaneKind.META
    _member.is_request = _member in (
        MsgType.REQ_SH,
        MsgType.REQ_EX,
        MsgType.REQ_UPG,
    )
    # Packet-field classification (``CmpSystem._packetize``): which
    # Packet booleans a message of this type sets when put on the wire.
    _member.pkt_is_reply = _member in (
        MsgType.DATA_S,
        MsgType.DATA_E,
        MsgType.DATA_M,
        MsgType.MEM_ACK,
    )
    _member.pkt_is_writeback = _member is MsgType.WRITEBACK
    _member.pkt_is_memory = _member in (
        MsgType.MEM_READ,
        MsgType.MEM_WRITE,
        MsgType.MEM_ACK,
    )
    _member.pkt_expects_data = _member in (
        MsgType.REQ_SH,
        MsgType.REQ_EX,
        MsgType.MEM_READ,
    )
del _member


@dataclass(slots=True)
class CoherenceMessage:
    """One protocol message about one cache line.

    ``requester`` is carried through the directory's transient states so
    forwarded data ends up at the right node; ``sender`` is whoever put
    the message on the wire.
    """

    mtype: MsgType
    line: int
    sender: int
    dest: int
    requester: int = -1
    #: §5.1 — set on INV messages whose delivery confirmation doubles as
    #: the acknowledgment; the receiver omits the data-less InvAck packet.
    ack_via_confirmation: bool = False
    uid: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError(f"negative line address: {self.line}")

    @property
    def lane(self) -> LaneKind:
        return self.mtype.lane

    def __repr__(self) -> str:
        return (
            f"Msg({self.mtype.name} line={self.line:#x} "
            f"{self.sender}->{self.dest} req={self.requester})"
        )


_new_message = CoherenceMessage.__new__


def make_message(
    mtype: MsgType,
    line: int,
    sender: int,
    dest: int,
    requester: int,
    ack_via_confirmation: bool = False,
) -> CoherenceMessage:
    """Hot-path constructor: direct slot writes, shared uid counter.

    Bit-identical to calling the dataclass — the uid comes from the same
    ``itertools.count`` — minus the ``__post_init__`` negative-line
    check, which callers on the message fast path (the columnar
    coherence engine, ``repro.coherence.vector``) satisfy by
    construction: every line address they send is taken from a message
    that was already validated on entry.
    """
    msg = _new_message(CoherenceMessage)
    msg.mtype = mtype
    msg.line = line
    msg.sender = sender
    msg.dest = dest
    msg.requester = requester
    msg.ack_via_confirmation = ack_via_confirmation
    msg.uid = next(_message_ids)
    return msg
