"""The columnar coherence engine (docs/performance.md).

The naive message path dispatches every delivered packet through four
layers of indirection — ``_on_packet`` → ``_dispatch_packet`` →
``_dispatch`` (two frozenset membership tests) → ``handle()`` (a trace
check plus an if/elif chain) → ``_on_*`` — and every outgoing reply
back down through ``send`` → ``_send_from`` → ``_transmit`` → ``_at``
→ ``CycleCalendar.schedule``.  At 16 nodes the protocol work is the
single largest profiler phase of an FSOI run.  None of that indirection
shrinks with better networks; like the cores phase before it
(``repro.cpu.vector``), it is pure per-message interpretive overhead.

This module replaces the per-delivery dispatch with a *columnar* engine
that is **bit-exact** with the reference handlers (every counter,
packet uid, trace stream and ``CmpResults`` field identical — enforced
by ``tests/coherence/test_vector_equivalence.py``):

* **A per-cycle mailbox** — the network's delivery callback appends
  packets instead of dispatching them; the network drains the mailbox
  (``post_delivery``) after its delivery phase and before any transmit
  work, so handler side effects (injections, releases of §4.4
  line-ordering holds) become visible at exactly the point the inline
  dispatch would have made them visible.  Batch boundaries never cross
  a cycle, and within the batch messages run in strict delivery order,
  so uid allocation, calendar sequencing and stat updates are
  reproduced exactly.
* **Fused per-type kernels** — a jump table indexed by
  ``MsgType._value_`` maps each message class to one flat function
  that fuses the handler body with its dispatch preamble and reply
  path: state dicts, cache arrays, counters, the line-ordering map and
  the calendar heap are pre-resolved into closure locals, and replies
  go straight to a ``heappush`` on the system calendar.  Only the hot
  stable-state transitions are fused; transient-state queueing
  (``_enqueue_or_nack``), queue drains, RETRY resends, capacity-bounded
  slices and fault-plan runs fall back to the retained reference
  handlers, which stay the single source of protocol truth.
* **Write-through state columns** — per-node occupancy columns (L1
  transient lines, directory "z"-queue depth, MSHRs in use, memory
  channel backlog) are mirrored write-through by ledger hooks on the
  reference paths and inline deltas in the kernels, then accrued into
  numpy arrays in bulk (:meth:`CoherenceVectorEngine.accrue_columns`).
  :meth:`CoherenceVectorEngine.audit` recomputes every column from the
  underlying dicts and verifies the mirrors — the equivalence suite
  runs it after every run.

Tracing forces the reference path per delivery (the handlers own the
``l1_event``/``dir_event`` emission points, and a deferred batch would
interleave trace records differently); fault-plan and capacity-bounded
runs keep the mailbox but route every message through the reference
dispatch.  Fast-forward composes through
:meth:`CoherenceVectorEngine.next_event`: a non-empty mailbox pins the
horizon to "now" (in practice the drain leaves it empty between ticks).

The reference dispatch remains the baseline implementation, selected
with ``CmpConfig(vectorized=False)`` or ``REPRO_NO_VECTOR=1``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.coherence.directory import DirState
from repro.coherence.l1 import L1State
from repro.coherence.messages import CoherenceMessage, MsgType, make_message
from repro.net.packet import Packet
from repro.obs.profile import PROFILER
from repro.obs.trace import TRACE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cmp.system import CmpSystem

__all__ = ["CoherenceVectorEngine"]


class CoherenceVectorEngine:
    """Batched message dispatch for one :class:`~repro.cmp.system.CmpSystem`.

    Build *after* the cores (the kernels capture each L1's bound
    ``on_fill``) and wire three points: the networks' delivery callback
    to :meth:`on_packet`, ``network.post_delivery`` to :meth:`drain`,
    and ``CmpSystem._complete_local`` to :meth:`complete_local`.
    """

    def __init__(self, system: "CmpSystem"):
        self.system = system
        n = system.config.num_nodes
        self.num_nodes = n
        self._mailbox: list[Packet] = []
        # Kernels cover exactly the configurations whose message flow
        # stays on Table 2's stable-state fast path; bounded slices
        # (capacity recalls) and fault plans run the reference handlers
        # per message, still batched through the mailbox.
        faults = system.config.faults
        self._kernels_ok = (
            (faults is None or faults.is_empty())
            and system.config.directory.capacity_lines is None
        )

        # -- write-through occupancy mirrors (python side) --------------
        # Maintained by the ledger hooks below for reference-path
        # transitions and by inline deltas inside the kernels; accrued
        # into the numpy columns in bulk by accrue_columns().
        self._l1_transients = [0] * n
        self._dir_queued = [0] * n
        self._mshr_in_use = [0] * n
        self._mem_backlog = [0] * n

        # -- numpy-backed state columns ---------------------------------
        self.l1_transients = np.zeros(n, dtype=np.int32)
        self.dir_queued = np.zeros(n, dtype=np.int32)
        self.mshr_in_use = np.zeros(n, dtype=np.int32)
        self.mem_backlog = np.zeros(n, dtype=np.int32)

        self._install_ledgers()
        self._kernels = self._build_kernels()

    # ------------------------------------------------------------------
    # ledger hooks: write-through mirrors for the reference paths
    # ------------------------------------------------------------------

    def _install_ledgers(self) -> None:
        system = self.system
        l1_tr = self._l1_transients
        dir_q = self._dir_queued
        mshr = self._mshr_in_use
        mem_q = self._mem_backlog

        def l1_ledger(node: int) -> Callable[[L1State, L1State], None]:
            def ledger(old: L1State, new: L1State) -> None:
                l1_tr[node] += new.is_transient - old.is_transient

            return ledger

        def delta_ledger(column: list, node: int) -> Callable[[int], None]:
            def ledger(delta: int) -> None:
                column[node] += delta

            return ledger

        for node, l1 in enumerate(system.l1s):
            l1.ledger = l1_ledger(node)
        for node, directory in enumerate(system.directories):
            directory.queue_ledger = delta_ledger(dir_q, node)
        for node, core in enumerate(system.cores):
            core.mshr.ledger = delta_ledger(mshr, node)
        for node, controller in system.memory.items():
            controller.ledger = delta_ledger(mem_q, node)

    # ------------------------------------------------------------------
    # delivery-side entry points
    # ------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Network delivery callback: collect into the cycle's mailbox.

        Tracing dispatches inline instead — the handlers own the trace
        emission points, and the reference stream interleaves them with
        the network's own events at the delivery instant.
        """
        if TRACE.enabled:
            self.system._on_packet(packet)
            return
        self._mailbox.append(packet)

    def drain(self) -> None:
        """Dispatch the mailbox in delivery order (``post_delivery``)."""
        mailbox = self._mailbox
        if not mailbox:
            return
        if PROFILER.enabled:
            t0 = perf_counter()
            self._drain_now(mailbox)
            PROFILER.add("coherence", perf_counter() - t0)
            return
        self._drain_now(mailbox)

    def _drain_now(self, mailbox: list) -> None:
        if self._kernels_ok:
            kernels = self._kernels
            for packet in mailbox:
                msg = packet.payload
                kernels[msg.mtype._value_](packet.src, msg)
        else:
            dispatch = self.system._dispatch_packet
            for packet in mailbox:
                dispatch(packet)
        mailbox.clear()

    def complete_local(self, node: int, msg: CoherenceMessage) -> None:
        """Calendar-driven local delivery (same-node L1 ↔ directory).

        Local completions stay per-message on the system calendar —
        batching them would reorder uid allocation against the other
        calendar actions interleaved at the same cycle — but each one
        dispatches through the same fused kernels.
        """
        if PROFILER.enabled:
            t0 = perf_counter()
            self._local(node, msg)
            PROFILER.add("coherence", perf_counter() - t0)
            return
        self._local(node, msg)

    def _local(self, node: int, msg: CoherenceMessage) -> None:
        if self._kernels_ok and not TRACE.enabled:
            self._kernels[msg.mtype._value_](node, msg)
            return
        system = self.system
        system._dispatch(msg.dest, msg)
        system._release_line(node, msg.line)

    def next_event(self, cycle: int) -> Optional[int]:
        """Fast-forward horizon: a queued mailbox pins to "now".

        Every network drains within its own tick, so between ticks the
        mailbox is empty and the engine contributes no horizon; the
        guard exists so the composition stays exact by construction
        rather than by schedule coincidence.
        """
        return cycle if self._mailbox else None

    # ------------------------------------------------------------------
    # columns: bulk accrual and the audit
    # ------------------------------------------------------------------

    def accrue_columns(self) -> None:
        """Refresh the numpy columns from the write-through mirrors."""
        self.l1_transients[:] = self._l1_transients
        self.dir_queued[:] = self._dir_queued
        self.mshr_in_use[:] = self._mshr_in_use
        self.mem_backlog[:] = self._mem_backlog

    def audit(self) -> None:
        """Verify every column against truth recomputed from the dicts.

        The equivalence suite calls this after each run: a drifted
        mirror means a kernel and the reference handler disagreed about
        a transition, even if the run's results happened to match.
        """
        if self._mailbox:
            raise RuntimeError(
                f"coherence mailbox not drained: {len(self._mailbox)} packets"
            )
        self.accrue_columns()
        system = self.system
        truth = {
            "l1_transients": [l1.outstanding() for l1 in system.l1s],
            "dir_queued": [d._queued_total for d in system.directories],
            "mshr_in_use": [core.mshr.in_use for core in system.cores],
            "mem_backlog": [
                system.memory[node].pending if node in system.memory else 0
                for node in range(self.num_nodes)
            ],
        }
        for name, expect in truth.items():
            column = getattr(self, name)
            if column.tolist() != expect:
                raise RuntimeError(
                    f"column {name} drifted: engine={column.tolist()} "
                    f"truth={expect}"
                )

    # ------------------------------------------------------------------
    # the fused kernels
    # ------------------------------------------------------------------

    def _build_kernels(self) -> list:
        """Build the jump table of fused per-``MsgType`` kernels.

        Each kernel is one flat function ``kernel(src, msg)`` serving
        both network deliveries (``src = packet.src``) and local
        completions (``src = the sending node``); it reproduces, in
        order: the system dispatch preamble for its type, the reference
        handler body for stable states, the outgoing sends (fused down
        to the calendar heap), and the §4.4 line release.  Cold and
        error paths delegate to the reference methods so exceptional
        behaviour (including the exact exception text) is shared.
        """
        from repro.cmp.system import _LINE_IN_FLIGHT

        system = self.system
        l1s = system.l1s
        dirs = system.directories
        mem = system.memory

        # Per-node pre-resolved structures (lists indexed by node).
        states = [l1._states for l1 in l1s]
        arrays = [l1.array for l1 in l1s]
        on_fills = [l1.on_fill for l1 in l1s]
        entries = [d._entries for d in dirs]

        def counters(objs, name):
            return [obj._count[name] for obj in objs]

        c_l1_inv = counters(l1s, "invalidations")
        c_l1_dwg = counters(l1s, "downgrades")
        c_l1_wb = counters(l1s, "writebacks")
        c_l1_sup = counters(l1s, "acks_suppressed")
        c_d_req = counters(dirs, "requests")
        c_d_reint = counters(dirs, "reinterpreted")
        c_d_memr = counters(dirs, "mem_reads")
        c_d_memw = counters(dirs, "mem_writes")
        c_d_wb = counters(dirs, "writebacks")
        c_d_dwgs = counters(dirs, "downgrades_sent")
        c_d_invs = counters(dirs, "invalidations_sent")
        c_d_conf = counters(dirs, "conf_acked_invs")

        # Shared transport state and scalars.
        line_pending = system._line_pending
        calendar = system._calendar
        heap = calendar._heap
        local_latency = system.config.local_latency
        request_issue = system._request_issue
        reply_record = system.reply_latency.record
        home_of = system.home_of
        memory_node_of = system.memory_node_of
        l2 = dirs[0].config.l2_latency
        l2_local = l2 + local_latency
        conf_ack = dirs[0].config.confirmation_ack
        split_wb = l1s[0].config.split_writeback
        wb_lead = l1s[0].config.wb_announce_lead
        expect_data = (
            system.network.expect_data_from
            if system._is_fsoi and system.config.optimizations.split_writeback
            else None
        )
        overflow = system._overflow
        overflow_active = system._overflow_active
        overflow_add = overflow_active.add
        net_try_send = system.network.try_send
        packetize = system._packetize
        make_msg = make_message

        l1_tr = self._l1_transients
        mem_q = self._mem_backlog

        Deque = deque
        I, S, E, M = L1State.I, L1State.S, L1State.E, L1State.M
        I_SD, I_MD, S_MA = L1State.I_SD, L1State.I_MD, L1State.S_MA
        DI, DV, DS, DM = DirState.DI, DirState.DV, DirState.DS, DirState.DM
        DI_DSD, DI_DMD = DirState.DI_DSD, DirState.DI_DMD
        DS_DIA, DS_DMDA, DS_DMA = (
            DirState.DS_DIA, DirState.DS_DMDA, DirState.DS_DMA,
        )
        DM_DID, DM_DSD, DM_DMD = (
            DirState.DM_DID, DirState.DM_DSD, DirState.DM_DMD,
        )
        DM_DSA, DM_DMA = DirState.DM_DSA, DirState.DM_DMA
        REQ_SH, REQ_EX, REQ_UPG = MsgType.REQ_SH, MsgType.REQ_EX, MsgType.REQ_UPG
        WRITEBACK, WB_ANNOUNCE = MsgType.WRITEBACK, MsgType.WB_ANNOUNCE
        INV_ACK, INV_ACK_DATA = MsgType.INV_ACK, MsgType.INV_ACK_DATA
        DWG_ACK, DWG_ACK_DATA = MsgType.DWG_ACK, MsgType.DWG_ACK_DATA
        DATA_S, DATA_E, DATA_M = MsgType.DATA_S, MsgType.DATA_E, MsgType.DATA_M
        EXC_ACK, INV, DWG = MsgType.EXC_ACK, MsgType.INV, MsgType.DWG
        MEM_READ, MEM_WRITE = MsgType.MEM_READ, MsgType.MEM_WRITE

        # The jump table is allocated up front (and filled at the end)
        # so the transport closures below can dispatch local completions
        # straight into it without going through the profiled
        # complete_local wrapper's two extra frames.
        table = [None] * (len(MsgType) + 1)
        profiler_add = PROFILER.add

        # -- fused transport (== _send_from / _transmit / _at / _release_line)

        def local_now(node, msg):
            # complete_local for a kernel-scheduled delivery: the engine
            # only schedules these while the kernels are active, so the
            # _kernels_ok re-check is unnecessary; tracing may have been
            # switched on between scheduling and firing, in which case
            # fall back to the reference dispatch like _local does.
            if TRACE.enabled:
                system._dispatch(msg.dest, msg)
                system._release_line(node, msg.line)
                return
            if PROFILER.enabled:
                t0 = perf_counter()
                table[msg.mtype._value_](node, msg)
                profiler_add("coherence", perf_counter() - t0)
                return
            table[msg.mtype._value_](node, msg)

        def inject_fast(node, msg):
            # == CmpSystem._inject, minus the bound-method dispatch.
            packet = packetize(node, msg)
            queue = overflow[node]
            if queue or not net_try_send(packet, system.cycle):
                queue.append(packet)
                overflow_add(node)

        def transmit(node, msg, delay):
            cycle = system.cycle
            if msg.dest == node:
                due = cycle + delay + local_latency
                if due <= cycle:
                    local_now(node, msg)
                    return
            else:
                due = cycle + delay
                if due <= cycle:
                    inject_fast(node, msg)
                    return

                def action(node=node, msg=msg):
                    inject_fast(node, msg)

                calendar._seq = seq = calendar._seq + 1
                heappush(heap, (due, seq, action))
                return

            def action(node=node, msg=msg):
                local_now(node, msg)

            calendar._seq = seq = calendar._seq + 1
            heappush(heap, (due, seq, action))

        def send_msg(node, msg, delay):
            # _send_from minus the request-issue stamp: no kernel sends
            # a REQ_* (RETRY resends go through the reference handler).
            key = (node, msg.line)
            pending = line_pending.get(key)
            if pending is None:
                line_pending[key] = _LINE_IN_FLIGHT
                transmit(node, msg, delay)
            elif pending is _LINE_IN_FLIGHT:
                queue = line_pending[key] = Deque()
                queue.append((msg, delay))
            else:
                pending.append((msg, delay))

        def release(node, line):
            key = (node, line)
            pending = line_pending.get(key)
            if pending is None:
                return
            if pending:
                queued_msg, queued_delay = pending.popleft()
                transmit(node, queued_msg, queued_delay)
            else:
                del line_pending[key]

        # -- shared directory helpers --------------------------------------

        def dir_entry(home, line):
            ent = entries[home].get(line)
            if ent is None:
                ent = dirs[home].entry(line)  # cold: materialize / warm set
            directory = dirs[home]
            directory._lru_clock = clock = directory._lru_clock + 1
            ent.last_use = clock
            return ent

        def reply(home, line, dest, mtype):
            # send_msg + transmit, manually inlined for the directory's
            # L2-latency response — the single most frequent send.
            msg = make_msg(mtype, line, home, dest, dest)
            key = (home, line)
            pending = line_pending.get(key)
            if pending is None:
                line_pending[key] = _LINE_IN_FLIGHT
                cycle = system.cycle
                if dest == home:
                    due = cycle + l2_local
                    if due <= cycle:
                        local_now(home, msg)
                        return

                    def action(home=home, msg=msg):
                        local_now(home, msg)

                else:
                    due = cycle + l2
                    if due <= cycle:
                        inject_fast(home, msg)
                        return

                    def action(home=home, msg=msg):
                        inject_fast(home, msg)

                calendar._seq = seq = calendar._seq + 1
                heappush(heap, (due, seq, action))
            elif pending is _LINE_IN_FLIGHT:
                queue = line_pending[key] = Deque()
                queue.append((msg, l2))
            else:
                pending.append((msg, l2))

        def invalidate(home, line, targets, sharer_inv):
            count = c_d_invs[home]
            for target in sorted(targets):
                count.value += 1
                use_conf = sharer_inv and conf_ack and target != home
                if use_conf:
                    c_d_conf[home].value += 1
                send_msg(
                    home,
                    make_msg(INV, line, home, target, home, use_conf),
                    l2,
                )

        def evict_line(home, ent, line):
            if ent.dirty:
                c_d_memw[home].value += 1
                send_msg(
                    home,
                    make_msg(MEM_WRITE, line, home, memory_node_of(line),
                             home),
                    l2,
                )
            ent.state = DI
            ent.sharers.clear()
            ent.dirty = False
            if ent.queued:
                dirs[home]._drain(ent, line)
            if not ent.queued and ent.state is DI:
                entries[home].pop(line, None)

        # -- shared L1 helpers ---------------------------------------------

        def l1_ack(node, cause, mtype):
            # send_msg + transmit inlined for the delay-0 acknowledgment:
            # a free line goes straight to inject (remote) or the
            # local-latency calendar slot (home == node).
            line = cause.line
            msg = make_msg(mtype, line, node, cause.sender, cause.requester)
            key = (node, line)
            pending = line_pending.get(key)
            if pending is None:
                line_pending[key] = _LINE_IN_FLIGHT
                dest = msg.dest
                if dest != node:
                    inject_fast(node, msg)
                    return
                cycle = system.cycle
                due = cycle + local_latency
                if due <= cycle:
                    local_now(node, msg)
                    return

                def action(node=node, msg=msg):
                    local_now(node, msg)

                calendar._seq = seq = calendar._seq + 1
                heappush(heap, (due, seq, action))
            elif pending is _LINE_IN_FLIGHT:
                queue = line_pending[key] = Deque()
                queue.append((msg, 0))
            else:
                pending.append((msg, 0))

        def l1_evict(node, state_map, victim):
            # The Repl column; the victim is never transient (the cache
            # array's is_evictable predicate excludes transient lines).
            if state_map.get(victim, I) is M:
                c_l1_wb[node].value += 1
                home = home_of(victim)
                delay = 0
                if split_wb:
                    send_msg(
                        node,
                        make_msg(WB_ANNOUNCE, victim, node, home, node),
                        0,
                    )
                    delay = wb_lead
                send_msg(
                    node,
                    make_msg(WRITEBACK, victim, node, home, node),
                    delay,
                )
            state_map.pop(victim, None)

        # -- directory kernels ---------------------------------------------

        def k_request(src, msg):
            home = msg.dest
            line = msg.line
            # dir_entry, inlined: the hottest kernel touches the entry
            # map once per request.
            ent = entries[home].get(line)
            if ent is None:
                ent = dirs[home].entry(line)  # cold: materialize / warm set
            directory = dirs[home]
            directory._lru_clock = clock = directory._lru_clock + 1
            ent.last_use = clock
            c_d_req[home].value += 1
            state = ent.state
            if state.is_transient:
                dirs[home]._enqueue_or_nack(ent, msg)
                release(src, line)
                return
            mtype = msg.mtype
            req = msg.requester
            if mtype is REQ_UPG and req not in ent.sharers:
                c_d_reint[home].value += 1
                mtype = REQ_EX
            if state is DM:
                sharers = ent.sharers
                if len(sharers) != 1:
                    raise RuntimeError(f"owner of a non-DM entry: {sharers}")
                owner = next(iter(sharers))
                ent.requester = req
                ent.acks_needed = 1
                if mtype is REQ_SH:
                    c_d_dwgs[home].value += 1
                    send_msg(
                        home,
                        make_msg(DWG, line, home, owner, req),
                        l2,
                    )
                    ent.state = DM_DSD
                else:
                    invalidate(home, line, {owner}, False)
                    ent.state = DM_DMD
            elif state is DS:
                if mtype is REQ_SH:
                    reply(home, line, req, DATA_S)
                    ent.sharers.add(req)
                else:
                    targets = ent.sharers - {req}
                    ent.requester = req
                    if not targets:
                        reply(
                            home, line, req,
                            EXC_ACK if mtype is REQ_UPG else DATA_M,
                        )
                        ent.sharers = {req}
                        ent.state = DM
                    else:
                        invalidate(home, line, targets, True)
                        ent.acks_needed = len(targets)
                        ent.sharers -= targets
                        ent.state = DS_DMA if mtype is REQ_UPG else DS_DMDA
            elif state is DV:
                reply(home, line, req, DATA_E if mtype is REQ_SH else DATA_M)
                ent.sharers = {req}
                ent.state = DM
            else:  # DI
                c_d_memr[home].value += 1
                ent.requester = req
                ent.state = DI_DSD if mtype is REQ_SH else DI_DMD
                send_msg(
                    home,
                    make_msg(MEM_READ, line, home, memory_node_of(line),
                             home),
                    l2,
                )
            # _enforce_capacity is a no-op here: bounded slices disable
            # the kernels at construction (self._kernels_ok).
            # release, inlined.
            key = (src, line)
            pending = line_pending.get(key)
            if pending is not None:
                if pending:
                    queued_msg, queued_delay = pending.popleft()
                    transmit(src, queued_msg, queued_delay)
                else:
                    del line_pending[key]

        def k_writeback(src, msg):
            home = msg.dest
            line = msg.line
            ent = dir_entry(home, line)
            c_d_wb[home].value += 1
            ent.dirty = True
            state = ent.state
            if state is DM:
                ent.sharers.clear()
                ent.state = DV
            elif state is DM_DID:
                ent.state = DS_DIA
            elif state is DM_DSD:
                ent.state = DM_DSA
            elif state is DM_DMD:
                ent.state = DM_DMA
            else:
                raise RuntimeError(f"WriteBack in {state.name}: {msg}")
            if ent.queued:
                dirs[home]._drain(ent, line)
            release(src, line)

        def k_wb_announce(src, msg):
            # §5.2: informational for the directory; the FSOI network
            # pre-arms its data-packet expectation — but only for a
            # *network* delivery (dest != src), never a local loop.
            if expect_data is not None and msg.dest != src:
                expect_data(msg.dest, msg.sender)
            dir_entry(msg.dest, msg.line)
            release(src, msg.line)

        def k_mem_ack(src, msg):
            home = msg.dest
            line = msg.line
            ent = dir_entry(home, line)
            state = ent.state
            if state is DI_DSD:
                reply(home, line, ent.requester, DATA_E)
            elif state is DI_DMD:
                reply(home, line, ent.requester, DATA_M)
            else:
                raise RuntimeError(f"MemAck in {state.name}: {msg}")
            ent.dirty = False
            ent.sharers = {ent.requester}
            ent.state = DM
            ent.requester = -1
            ent.acks_needed = 0
            if ent.queued:
                dirs[home]._drain(ent, line)
            release(src, line)

        def make_inv_ack(carries_data):
            def k_inv_ack(src, msg):
                home = msg.dest
                line = msg.line
                ent = dir_entry(home, line)
                if carries_data:
                    ent.dirty = True
                state = ent.state
                if state is DS_DMDA or state is DS_DMA or state is DS_DIA:
                    ent.acks_needed -= 1
                    if ent.acks_needed <= 0:
                        if state is DS_DMDA:
                            reply(home, line, ent.requester, DATA_M)
                            ent.sharers = {ent.requester}
                            ent.state = DM
                            ent.requester = -1
                            ent.acks_needed = 0
                        elif state is DS_DMA:
                            reply(home, line, ent.requester, EXC_ACK)
                            ent.sharers = {ent.requester}
                            ent.state = DM
                            ent.requester = -1
                            ent.acks_needed = 0
                        else:  # DS_DIA — evicting
                            evict_line(home, ent, line)
                elif state is DM_DMD or state is DM_DMA:
                    reply(home, line, ent.requester, DATA_M)
                    ent.sharers = {ent.requester}
                    ent.state = DM
                    ent.requester = -1
                    ent.acks_needed = 0
                elif state is DM_DID:
                    evict_line(home, ent, line)
                else:
                    raise RuntimeError(f"InvAck in {state.name}: {msg}")
                if ent.queued:
                    dirs[home]._drain(ent, line)
                release(src, line)

            return k_inv_ack

        def make_dwg_ack(carries_data):
            def k_dwg_ack(src, msg):
                home = msg.dest
                line = msg.line
                ent = dir_entry(home, line)
                if carries_data:
                    ent.dirty = True
                state = ent.state
                if state is DM_DSD:
                    reply(home, line, ent.requester, DATA_S)
                    ent.sharers.add(ent.requester)
                    ent.state = DS
                    ent.requester = -1
                    ent.acks_needed = 0
                elif state is DM_DSA:
                    reply(home, line, ent.requester, DATA_E)
                    ent.sharers = {ent.requester}
                    ent.state = DM
                    ent.requester = -1
                    ent.acks_needed = 0
                else:
                    raise RuntimeError(f"DwgAck in {state.name}: {msg}")
                if ent.queued:
                    dirs[home]._drain(ent, line)
                release(src, line)

            return k_dwg_ack

        # -- L1 kernels ------------------------------------------------------

        def make_data(mtype, to_state, for_write):
            def k_data(src, msg):
                node = msg.dest
                line = msg.line
                issued = request_issue.pop((node, line), None)
                if issued is not None:
                    reply_record(system.cycle - issued)
                state_map = states[node]
                state = state_map.get(line, I)
                if state is I_SD:
                    if for_write:
                        raise RuntimeError(f"DATA_M for a read miss: {msg}")
                    new = to_state
                elif state is I_MD:
                    if not for_write:
                        raise RuntimeError(
                            f"{mtype.name} for a write miss: {msg}"
                        )
                    new = M
                else:
                    raise RuntimeError(
                        f"unexpected data in {state.name}: {msg}"
                    )
                victim = arrays[node].insert(line)
                if victim is not None:
                    l1_evict(node, state_map, victim)
                state_map[line] = new
                l1_tr[node] -= 1
                on_fills[node](line)
                # release, inlined.
                key = (src, line)
                pending = line_pending.get(key)
                if pending is not None:
                    if pending:
                        queued_msg, queued_delay = pending.popleft()
                        transmit(src, queued_msg, queued_delay)
                    else:
                        del line_pending[key]

            return k_data

        def k_exc_ack(src, msg):
            node = msg.dest
            line = msg.line
            issued = request_issue.pop((node, line), None)
            if issued is not None:
                reply_record(system.cycle - issued)
            state_map = states[node]
            state = state_map.get(line, I)
            if state is not S_MA:
                raise RuntimeError(f"ExcAck in {state.name}: {msg}")
            state_map[line] = M
            l1_tr[node] -= 1
            on_fills[node](line)
            release(src, line)

        def k_inv(src, msg):
            node = msg.dest
            line = msg.line
            state_map = states[node]
            state = state_map.get(line, I)
            c_l1_inv[node].value += 1
            if state is M:
                l1_ack(node, msg, INV_ACK_DATA)
                arrays[node].remove(line)
                del state_map[line]
                release(src, line)
                return
            if state is S or state is E:
                arrays[node].remove(line)
                del state_map[line]
            elif state is S_MA:
                # Upgrade lost the race: full write miss (both transient,
                # so the occupancy column is unchanged).
                arrays[node].remove(line)
                state_map[line] = I_MD
            # I / I.SD / I.MD: acknowledge and stay.
            if msg.ack_via_confirmation and state is not E:
                c_l1_sup[node].value += 1
            else:
                l1_ack(node, msg, INV_ACK)
            release(src, line)

        def k_dwg(src, msg):
            node = msg.dest
            line = msg.line
            state_map = states[node]
            state = state_map.get(line, I)
            c_l1_dwg[node].value += 1
            if state is S or state is S_MA:
                raise RuntimeError(f"Dwg to a shared line: {msg}")
            if state is M:
                l1_ack(node, msg, DWG_ACK_DATA)
                state_map[line] = S
                release(src, line)
                return
            if state is E:
                state_map[line] = S
            # I / I.SD / I.MD: acknowledge and stay.
            l1_ack(node, msg, DWG_ACK)
            release(src, line)

        def k_retry(src, msg):
            # NACK resend: rare, and the resend must stamp the Figure 5
            # request-issue table — keep the reference handler.
            l1s[msg.dest]._on_retry(msg)
            release(src, msg.line)

        # -- memory kernels ----------------------------------------------------

        def k_mem(src, msg):
            dest = msg.dest
            controller = mem[dest]
            controller._arrival[msg.uid] = system.cycle
            controller._queue.append(msg)
            mem_q[dest] += 1
            release(src, msg.line)

        # auto() numbers the 19 members from 1, so index by _value_
        # straight into the 20-slot table allocated above.
        table[REQ_SH._value_] = k_request
        table[REQ_EX._value_] = k_request
        table[REQ_UPG._value_] = k_request
        table[WRITEBACK._value_] = k_writeback
        table[WB_ANNOUNCE._value_] = k_wb_announce
        table[INV_ACK._value_] = make_inv_ack(False)
        table[INV_ACK_DATA._value_] = make_inv_ack(True)
        table[DWG_ACK._value_] = make_dwg_ack(False)
        table[DWG_ACK_DATA._value_] = make_dwg_ack(True)
        table[DATA_S._value_] = make_data(DATA_S, S, False)
        table[DATA_E._value_] = make_data(DATA_E, E, False)
        table[DATA_M._value_] = make_data(DATA_M, M, True)
        table[EXC_ACK._value_] = k_exc_ack
        table[INV._value_] = k_inv
        table[DWG._value_] = k_dwg
        table[MsgType.RETRY._value_] = k_retry
        table[MEM_READ._value_] = k_mem
        table[MEM_WRITE._value_] = k_mem
        table[MsgType.MEM_ACK._value_] = k_mem_ack
        return table
