"""MESI directory-based coherence substrate (paper §6, Table 2).

The protocol is implemented exactly as Table 2 specifies, including the
transient states and the "z" (cannot-process-now, queue it) and
reinterpretation (a queued Req(Upg) that races with an invalidation is
re-read as Req(Ex)) cases:

* :mod:`repro.coherence.messages` — the message vocabulary between L1
  controllers, the directory and memory, and its packet mapping
  (requests/acks are 72-bit meta packets, data transfers 360-bit data
  packets).
* :mod:`repro.coherence.l1` — the L1 cache controller state machine
  (M/E/S/I plus I.SD, I.MD, S.MA).
* :mod:`repro.coherence.directory` — the L2/directory controller state
  machine (DM/DS/DV/DI plus eight transient states).

Fetch deadlock is avoided probabilistically with NACK/Retry, the
approach the paper adopts (§4.3.1 fn. 3).
"""

from repro.coherence.directory import DirectoryController, DirState
from repro.coherence.l1 import L1Controller, L1State
from repro.coherence.messages import CoherenceMessage, MsgType

__all__ = [
    "DirectoryController",
    "DirState",
    "L1Controller",
    "L1State",
    "CoherenceMessage",
    "MsgType",
]
