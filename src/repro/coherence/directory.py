"""L2 / directory controller — Table 2's lower state machine, verbatim.

Stable states: **DI** (not cached anywhere, not resident in this L2
slice), **DV** (valid in L2, no sharers), **DS** (shared by one or more
L1s, L2 copy valid), **DM** (exclusive at one L1 owner, L2 copy
potentially stale).  Transients are named by (previous, next) stable
pair with a superscript for what they wait on: ``D`` a data reply,
``A`` just acknowledgments — e.g. ``DS.DM^DA`` waits for InvAcks and
then supplies data, ``DS.DM^A`` (the upgrade path) waits for InvAcks
and sends only an ExcAck.

"z" events are queued per line and drained when the line reaches a
stable state; a queued Req(Upg) whose sender is no longer a sharer is
reinterpreted as Req(Ex) (the table's ``(Req(Ex))`` annotations).  When
a line's queue is full the directory NACKs with Retry — the paper's
probabilistic fetch-deadlock avoidance (§4.3.1 fn. 3).

One deviation from the table text: on ``DwgAck`` in ``DM.DSD`` we move
to **DS** (owner downgraded to S, requester added as S) where the
scanned table prints "/DM"; DS is the only reading consistent with the
L1 table's ``Dwg -> DwgAck(D)/S`` row.

Timing note for the fast-forward engine (docs/performance.md): the
directory is *purely reactive* — it has no tick, never self-schedules,
and every outgoing message routes through the system calendar via its
``send`` callback.  It therefore contributes no event horizon of its
own; its future activity is always represented by a calendar entry or
an in-flight packet, both already covered by other horizons.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Callable, Optional

from repro.coherence.messages import CoherenceMessage, MsgType
from repro.obs.trace import TRACE
from repro.util.stats import StatGroup

__all__ = ["DirState", "DirectoryController", "DirectoryConfig"]

SendFn = Callable[[CoherenceMessage, int], None]


class DirState(Enum):
    DI = auto()
    DV = auto()
    DS = auto()
    DM = auto()
    DI_DSD = auto()   # memory fetch for a shared request
    DI_DMD = auto()   # memory fetch for an exclusive request
    DS_DIA = auto()   # invalidating sharers to evict the line
    DS_DMDA = auto()  # invalidating sharers, will send Data(M)
    DS_DMA = auto()   # invalidating sharers, will send ExcAck (upgrade)
    DM_DID = auto()   # invalidating the owner to evict the line
    DM_DSD = auto()   # downgrading the owner for a shared request
    DM_DMD = auto()   # invalidating the owner for an exclusive request
    DM_DSA = auto()   # owner wrote back during downgrade; awaiting DwgAck
    DM_DMA = auto()   # owner wrote back during invalidate; awaiting InvAck

    # ``is_transient`` is a precomputed member attribute (filled in
    # below): it gates every request and every queue drain, where a
    # plain attribute load beats a property call plus a tuple scan.
    # ``code`` is a dense integer for the columnar engine's state
    # gathers (repro.coherence.vector).
    is_transient: bool
    code: int


for _member in DirState:
    _member.is_transient = _member.name not in ("DI", "DV", "DS", "DM")
    _member.code = _member.value
del _member


@dataclass
class DirectoryConfig:
    """Directory slice parameters (Table 3 defaults)."""

    l2_latency: int = 15          # slice access latency, applied per response
    line_queue_depth: int = 4     # queued ("z") messages per line before NACK
    request_queue_depth: int = 64 # total queued messages before NACK
    confirmation_ack: bool = False  # §5.1 — flag sharer invalidations
    #: Lines this L2 slice can hold (Table 3: 64 KB / 32 B = 2048).
    #: ``None`` models an unbounded slice — the default for calibrated
    #: experiments, where the workload signatures already encode which
    #: accesses miss the L2 (see DESIGN.md); a bound turns capacity
    #: pressure into real Repl recalls.
    capacity_lines: Optional[int] = None


@dataclass(slots=True)
class _Entry:
    """Directory state for one line homed at this slice."""

    state: DirState = DirState.DI
    sharers: set[int] = field(default_factory=set)
    dirty: bool = False           # L2 copy differs from memory
    requester: int = -1           # beneficiary of the in-flight transaction
    acks_needed: int = 0
    queued: deque = field(default_factory=deque)
    last_use: int = 0             # LRU clock for capacity eviction

    @property
    def owner(self) -> int:
        if len(self.sharers) != 1:
            raise RuntimeError(f"owner of a non-DM entry: {self.sharers}")
        return next(iter(self.sharers))


class DirectoryController:
    """One node's L2 slice + directory for the lines homed there."""

    def __init__(
        self,
        node: int,
        send: SendFn,
        memory_node_of: Callable[[int], int],
        config: Optional[DirectoryConfig] = None,
        stats: Optional[StatGroup] = None,
    ):
        self.node = node
        self.send = send
        self.memory_node_of = memory_node_of
        self.config = config or DirectoryConfig()
        self._entries: dict[int, _Entry] = {}
        #: Warm-start lines resident-valid (DV) in this slice but not
        #: yet materialized as entries; :meth:`entry` materializes (and
        #: consumes) them on first touch.  May be shared between slices
        #: — home interleaving guarantees no two slices are ever asked
        #: about the same line.  See :meth:`preload_valid`.
        self._warm: set[int] = set()
        self._queued_total = 0
        self._lru_clock = 0
        #: Columnar-engine ledger hook (repro.coherence.vector): called
        #: with the delta (+1 enqueue, -1 drain) whenever the "z" queue
        #: population changes, so the engine's per-node queued column
        #: stays write-through.  ``None`` (the default) keeps the
        #: reference path cost at a single predicate check.
        self.queue_ledger: Optional[Callable[[int], None]] = None
        stats = stats or StatGroup(f"dir.{node}")
        self.stats = stats
        self._count = {
            name: stats.counter(name)
            for name in (
                "requests", "mem_reads", "mem_writes", "invalidations_sent",
                "downgrades_sent", "nacks_sent", "queued", "reinterpreted",
                "writebacks", "conf_acked_invs", "capacity_evictions",
            )
        }

    # -- lookups -------------------------------------------------------------

    def entry(self, line: int) -> _Entry:
        ent = self._entries.get(line)
        if ent is None:
            ent = _Entry()
            warm = self._warm
            if warm and line in warm:
                # Consume the warm marker: once materialized the entry
                # alone carries the state (an eviction back to DI must
                # not resurrect as DV on the next touch).
                warm.discard(line)
                ent.state = DirState.DV
            self._entries[line] = ent
        return ent

    def state(self, line: int) -> DirState:
        ent = self._entries.get(line)
        if ent is not None:
            return ent.state
        if self._warm and line in self._warm:
            return DirState.DV
        return DirState.DI

    def preload_valid(self, lines: set[int]) -> None:
        """Warm-start ``lines`` as resident-valid (DV) in this slice.

        Entries are materialized lazily on first touch instead of up
        front — a 16-node warm start covers ~67k lines of which a short
        run touches a few hundred, so eager materialization dominates
        construction cost.  ``lines`` may be a set shared with the
        other slices (home interleaving partitions it); it is consumed
        destructively as lines are touched.

        Requires an unbounded slice: capacity accounting counts live
        entries, so a bounded slice must materialize its warm set
        eagerly (the caller keeps the eager path in that case).
        """
        if self.config.capacity_lines is not None:
            raise ValueError("lazy warm start needs an unbounded L2 slice")
        self._warm = lines

    def outstanding(self) -> int:
        return sum(1 for e in self._entries.values() if e.state.is_transient)

    # -- event entry point -----------------------------------------------------

    def handle(self, msg: CoherenceMessage) -> None:
        entry = self.entry(msg.line)
        self._lru_clock += 1
        entry.last_use = self._lru_clock
        if TRACE.enabled:
            TRACE.emit(
                "dir_event", cat="coherence", node=self.node,
                line=msg.line, mtype=msg.mtype.name,
                state=entry.state.name, sender=msg.sender,
            )
        if msg.mtype is MsgType.WB_ANNOUNCE:
            return  # §5.2: informational; the network layer uses it
        if msg.mtype.is_request:
            self._count["requests"].add()
            if entry.state.is_transient:
                self._enqueue_or_nack(entry, msg)
                return
            self._handle_request(entry, msg)
            self._enforce_capacity(protect=msg.line)
            return
        # Non-request events are never "z" for a correctly operating
        # protocol; dispatch by state.
        self._handle_response(entry, msg)
        self._drain(entry, msg.line)

    # -- requests in stable states ------------------------------------------------

    def _handle_request(self, entry: _Entry, msg: CoherenceMessage) -> None:
        mtype, line, req = msg.mtype, msg.line, msg.requester
        if mtype is MsgType.REQ_UPG and req not in entry.sharers:
            # Race: the requester was invalidated after sending the
            # upgrade; Table 2's "(Req(Ex))" reinterpretation.
            self._count["reinterpreted"].add()
            mtype = MsgType.REQ_EX

        state = entry.state
        if state is DirState.DI:
            self._fetch_from_memory(entry, line, req, shared=mtype is MsgType.REQ_SH)
        elif state is DirState.DV:
            if mtype is MsgType.REQ_SH:
                self._reply(line, req, MsgType.DATA_E)
            else:
                self._reply(line, req, MsgType.DATA_M)
            entry.sharers = {req}
            entry.state = DirState.DM
        elif state is DirState.DS:
            self._request_in_ds(entry, line, req, mtype)
        elif state is DirState.DM:
            self._request_in_dm(entry, line, req, mtype)
        else:  # pragma: no cover - guarded by caller
            raise RuntimeError(f"request dispatched in transient {state}")

    def _request_in_ds(
        self, entry: _Entry, line: int, req: int, mtype: MsgType
    ) -> None:
        if mtype is MsgType.REQ_SH:
            self._reply(line, req, MsgType.DATA_S)
            entry.sharers.add(req)
            return
        targets = entry.sharers - {req}
        entry.requester = req
        if not targets:
            # Sole sharer requesting exclusivity.
            if mtype is MsgType.REQ_UPG:
                self._reply(line, req, MsgType.EXC_ACK, data=False)
            else:
                self._reply(line, req, MsgType.DATA_M)
            entry.sharers = {req}
            entry.state = DirState.DM
            return
        self._invalidate(line, targets, sharer_inv=True)
        entry.acks_needed = len(targets)
        entry.sharers -= targets
        entry.state = (
            DirState.DS_DMA if mtype is MsgType.REQ_UPG else DirState.DS_DMDA
        )

    def _request_in_dm(
        self, entry: _Entry, line: int, req: int, mtype: MsgType
    ) -> None:
        owner = entry.owner
        entry.requester = req
        entry.acks_needed = 1
        if mtype is MsgType.REQ_SH:
            self._count["downgrades_sent"].add()
            self.send(
                CoherenceMessage(
                    mtype=MsgType.DWG, line=line, sender=self.node,
                    dest=owner, requester=req,
                ),
                self.config.l2_latency,
            )
            entry.state = DirState.DM_DSD
        else:  # REQ_EX, or REQ_UPG reinterpreted above
            self._invalidate(line, {owner}, sharer_inv=False)
            entry.state = DirState.DM_DMD

    # -- responses / completions ------------------------------------------------

    def _handle_response(self, entry: _Entry, msg: CoherenceMessage) -> None:
        state = entry.state
        mtype = msg.mtype
        line = msg.line

        if mtype is MsgType.WRITEBACK:
            self._count["writebacks"].add()
            entry.dirty = True
            if state is DirState.DM:
                entry.sharers.clear()
                entry.state = DirState.DV
            elif state is DirState.DM_DID:
                entry.state = DirState.DS_DIA  # still awaiting the InvAck
            elif state is DirState.DM_DSD:
                entry.state = DirState.DM_DSA
            elif state is DirState.DM_DMD:
                entry.state = DirState.DM_DMA
            else:
                raise RuntimeError(f"WriteBack in {state.name}: {msg}")
            return

        if mtype is MsgType.MEM_ACK:
            if state is DirState.DI_DSD:
                self._reply(line, entry.requester, MsgType.DATA_E)
            elif state is DirState.DI_DMD:
                self._reply(line, entry.requester, MsgType.DATA_M)
            else:
                raise RuntimeError(f"MemAck in {state.name}: {msg}")
            entry.dirty = False
            entry.sharers = {entry.requester}
            self._finish(entry)
            return

        if mtype in (MsgType.INV_ACK, MsgType.INV_ACK_DATA):
            self._on_inv_ack(entry, msg)
            return

        if mtype in (MsgType.DWG_ACK, MsgType.DWG_ACK_DATA):
            self._on_dwg_ack(entry, msg)
            return

        raise RuntimeError(f"directory at {self.node} cannot handle {msg}")

    def _on_inv_ack(self, entry: _Entry, msg: CoherenceMessage) -> None:
        state, line = entry.state, msg.line
        if msg.mtype is MsgType.INV_ACK_DATA:
            entry.dirty = True
        if state in (DirState.DS_DMDA, DirState.DS_DMA, DirState.DS_DIA):
            entry.acks_needed -= 1
            if entry.acks_needed > 0:
                return
            if state is DirState.DS_DMDA:
                self._reply(line, entry.requester, MsgType.DATA_M)
                entry.sharers = {entry.requester}
                self._finish(entry)
            elif state is DirState.DS_DMA:
                self._reply(line, entry.requester, MsgType.EXC_ACK, data=False)
                entry.sharers = {entry.requester}
                self._finish(entry)
            else:  # DS_DIA — evicting
                self._evict_line(entry, line)
            return
        if state is DirState.DM_DMD or state is DirState.DM_DMA:
            self._reply(line, entry.requester, MsgType.DATA_M)
            entry.sharers = {entry.requester}
            self._finish(entry)
            return
        if state is DirState.DM_DID:
            self._evict_line(entry, line)
            return
        raise RuntimeError(f"InvAck in {state.name}: {msg}")

    def _on_dwg_ack(self, entry: _Entry, msg: CoherenceMessage) -> None:
        state, line = entry.state, msg.line
        if msg.mtype is MsgType.DWG_ACK_DATA:
            entry.dirty = True
        if state is DirState.DM_DSD:
            # Owner downgraded to S; requester joins as S.  (See module
            # docstring for the DS-vs-DM table deviation.)
            self._reply(line, entry.requester, MsgType.DATA_S)
            entry.sharers.add(entry.requester)
            entry.state = DirState.DS
            self._finish(entry, already_stable=True)
            return
        if state is DirState.DM_DSA:
            # Owner wrote back before the downgrade landed: requester is
            # now the only holder and gets the line exclusively.
            self._reply(line, entry.requester, MsgType.DATA_E)
            entry.sharers = {entry.requester}
            self._finish(entry)
            return
        raise RuntimeError(f"DwgAck in {state.name}: {msg}")

    # -- L2 replacement (the Repl column) -----------------------------------------

    def replace(self, line: int) -> None:
        """Evict ``line`` from this L2 slice (the directory Repl event)."""
        entry = self._entries.get(line)
        if entry is None or entry.state is DirState.DI:
            return
        state = entry.state
        if state.is_transient:
            raise RuntimeError(f"cannot replace line {line:#x} in {state.name}")
        if state is DirState.DV:
            self._evict_line(entry, line)
        elif state is DirState.DS:
            targets = set(entry.sharers)
            self._invalidate(line, targets, sharer_inv=True)
            entry.acks_needed = len(targets)
            entry.sharers.clear()
            entry.state = DirState.DS_DIA
        else:  # DM
            self._invalidate(line, {entry.owner}, sharer_inv=False)
            entry.acks_needed = 1
            entry.state = DirState.DM_DID

    def _evict_line(self, entry: _Entry, line: int) -> None:
        if entry.dirty:
            self._count["mem_writes"].add()
            self.send(
                CoherenceMessage(
                    mtype=MsgType.MEM_WRITE, line=line, sender=self.node,
                    dest=self.memory_node_of(line), requester=self.node,
                ),
                self.config.l2_latency,
            )
        entry.state = DirState.DI
        entry.sharers.clear()
        entry.dirty = False
        self._drain(entry, line)
        if not entry.queued and entry.state is DirState.DI:
            self._entries.pop(line, None)

    # -- helpers ----------------------------------------------------------------

    def _fetch_from_memory(
        self, entry: _Entry, line: int, req: int, shared: bool
    ) -> None:
        self._count["mem_reads"].add()
        entry.requester = req
        entry.state = DirState.DI_DSD if shared else DirState.DI_DMD
        self.send(
            CoherenceMessage(
                mtype=MsgType.MEM_READ, line=line, sender=self.node,
                dest=self.memory_node_of(line), requester=self.node,
            ),
            self.config.l2_latency,
        )

    def _invalidate(self, line: int, targets: set[int], sharer_inv: bool) -> None:
        for target in sorted(targets):
            self._count["invalidations_sent"].add()
            # §5.1 applies only to *remote* sharer invalidations: a local
            # delivery never crosses the network, so there is no
            # confirmation to stand in for the acknowledgment.
            use_conf = (
                sharer_inv
                and self.config.confirmation_ack
                and target != self.node
            )
            if use_conf:
                self._count["conf_acked_invs"].add()
            self.send(
                CoherenceMessage(
                    mtype=MsgType.INV, line=line, sender=self.node,
                    dest=target, requester=self.node,
                    ack_via_confirmation=use_conf,
                ),
                self.config.l2_latency,
            )

    def _reply(self, line: int, dest: int, mtype: MsgType, data: bool = True) -> None:
        self.send(
            CoherenceMessage(
                mtype=mtype, line=line, sender=self.node,
                dest=dest, requester=dest,
            ),
            self.config.l2_latency,
        )

    def _finish(self, entry: _Entry, already_stable: bool = False) -> None:
        if not already_stable:
            entry.state = DirState.DM
        entry.requester = -1
        entry.acks_needed = 0

    def _enqueue_or_nack(self, entry: _Entry, msg: CoherenceMessage) -> None:
        if (
            len(entry.queued) >= self.config.line_queue_depth
            or self._queued_total >= self.config.request_queue_depth
        ):
            self._count["nacks_sent"].add()
            self.send(
                CoherenceMessage(
                    mtype=MsgType.RETRY, line=msg.line, sender=self.node,
                    dest=msg.requester, requester=msg.requester,
                ),
                0,
            )
            return
        self._count["queued"].add()
        entry.queued.append(msg)
        self._queued_total += 1
        if self.queue_ledger is not None:
            self.queue_ledger(1)

    def _drain(self, entry: _Entry, line: int) -> None:
        """Process queued requests while the line is stable."""
        while entry.queued and not entry.state.is_transient:
            msg = entry.queued.popleft()
            self._queued_total -= 1
            if self.queue_ledger is not None:
                self.queue_ledger(-1)
            self._handle_request(entry, msg)

    def _enforce_capacity(self, protect: int) -> None:
        """Recall the LRU stable line when the slice is over capacity.

        The Repl column of Table 2: the victim's holders are recalled
        (Inv/Dwg as its state requires) and dirty data written back.
        ``protect`` (the line just touched) is never chosen.  Transient
        lines cannot be evicted; if everything is transient the slice
        temporarily runs over capacity, as a real pending-miss file
        would.
        """
        capacity = self.config.capacity_lines
        if capacity is None:
            return
        live = [
            (line, entry)
            for line, entry in self._entries.items()
            if entry.state is not DirState.DI
        ]
        if len(live) <= capacity:
            return
        candidates = [
            (entry.last_use, line)
            for line, entry in live
            if not entry.state.is_transient and line != protect
        ]
        if not candidates:
            return
        excess = len(live) - capacity
        for _use, line in sorted(candidates)[:excess]:
            self._count["capacity_evictions"].add()
            self.replace(line)
