"""L1 cache controller — Table 2's upper state machine, verbatim.

States: the MESI stable states plus three transients named by their
(previous, next) stable pair: ``I.SD`` (read miss, awaiting data),
``I.MD`` (write miss, awaiting data), ``S.MA`` (upgrade, awaiting ack).

Events and actions follow the table:

* CPU ``Read``/``Write``/``Repl`` (eviction) come from the core side via
  :meth:`L1Controller.access` and fills.
* ``Data``/``ExcAck``/``Inv``/``Dwg``/``Retry`` arrive from the
  directory via :meth:`L1Controller.handle`.
* "z" rows (transient states refusing CPU accesses) surface as
  ``AccessResult.STALL`` — the core retries the access later, exactly
  like a blocked MSHR.

§5.1's confirmation-as-acknowledgment: when an invalidation is flagged
``ack_via_confirmation``, a *data-less* acknowledgment is omitted — the
network-level confirmation of the Inv's delivery already told the
directory everything a plain InvAck would (the commitment to apply the
invalidation).  Acks that carry a modified line are always explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable, Optional

from repro.coherence.messages import CoherenceMessage, MsgType
from repro.obs.trace import TRACE
from repro.util.cache import CacheArray
from repro.util.stats import StatGroup

__all__ = ["L1State", "AccessResult", "L1Controller"]

#: send(msg, delay_cycles) — provided by the CMP adapter.
SendFn = Callable[[CoherenceMessage, int], None]


class L1State(Enum):
    I = auto()
    S = auto()
    E = auto()
    M = auto()
    I_SD = auto()  # I -> S, waiting for data
    I_MD = auto()  # I -> M, waiting for data
    S_MA = auto()  # S -> M, waiting for ack

    # ``is_transient`` is a precomputed member attribute (filled in
    # below): it is tested on every CPU access and every directory-side
    # event, where a plain attribute load beats a property call plus a
    # tuple scan.  ``code`` is a dense integer for the columnar engine's
    # state gathers (repro.coherence.vector).
    is_transient: bool
    code: int


for _member in L1State:
    _member.is_transient = _member.name in ("I_SD", "I_MD", "S_MA")
    _member.code = _member.value
del _member


class AccessResult(Enum):
    HIT = auto()
    MISS = auto()   # request issued; core will be called back on fill
    STALL = auto()  # line in a transient state ("z"); retry later


@dataclass
class L1Config:
    """L1 geometry and behaviour knobs (Table 3 defaults)."""

    capacity_bytes: int = 8192
    line_bytes: int = 32
    ways: int = 2
    retry_delay: int = 20           # cycles before resending after a NACK
    confirmation_ack: bool = False  # §5.1 (effective only over FSOI)
    split_writeback: bool = False   # §5.2
    wb_announce_lead: int = 6       # announce -> data gap for split WBs


class L1Controller:
    """One node's private L1 data cache controller."""

    def __init__(
        self,
        node: int,
        send: SendFn,
        home_of: Callable[[int], int],
        config: Optional[L1Config] = None,
        on_fill: Optional[Callable[[int], None]] = None,
        stats: Optional[StatGroup] = None,
    ):
        self.node = node
        self.send = send
        self.home_of = home_of
        self.config = config or L1Config()
        self.on_fill = on_fill or (lambda line: None)
        self._states: dict[int, L1State] = {}
        #: Columnar-engine ledger hook (repro.coherence.vector): called
        #: as ``ledger(old_state, new_state)`` from :meth:`_set_state` so
        #: the engine's per-node transient-line column stays write-through
        #: for the reference code paths its fused kernels do not cover.
        #: ``None`` (the default) keeps the reference path cost at a
        #: single predicate check.
        self.ledger: Optional[Callable[[L1State, L1State], None]] = None
        self.array = CacheArray.from_geometry(
            self.config.capacity_bytes,
            self.config.line_bytes,
            self.config.ways,
            is_evictable=lambda line: not self.state(line).is_transient,
        )
        stats = stats or StatGroup(f"l1.{node}")
        self.stats = stats
        self._count = {
            name: stats.counter(name)
            for name in (
                "read_hits", "write_hits", "read_misses", "write_misses",
                "upgrades", "stalls", "invalidations", "downgrades",
                "writebacks", "retries", "acks_suppressed",
            )
        }

    # -- state helpers -----------------------------------------------------

    def state(self, line: int) -> L1State:
        return self._states.get(line, L1State.I)

    def _set_state(self, line: int, state: L1State) -> None:
        if self.ledger is not None:
            self.ledger(self._states.get(line, L1State.I), state)
        if state is L1State.I:
            self._states.pop(line, None)
        else:
            self._states[line] = state

    def outstanding(self) -> int:
        """Number of lines in transient states (live misses)."""
        return sum(1 for s in self._states.values() if s.is_transient)

    # -- CPU side (Read / Write / Repl columns) ------------------------------

    def access(self, line: int, is_write: bool) -> AccessResult:
        """One load or store; may issue a request to the home directory."""
        state = self.state(line)
        if state.is_transient:
            self._count["stalls"].add()
            return AccessResult.STALL

        if state is L1State.I:
            if is_write:
                self._count["write_misses"].add()
                self._request(line, MsgType.REQ_EX)
                self._set_state(line, L1State.I_MD)
            else:
                self._count["read_misses"].add()
                self._request(line, MsgType.REQ_SH)
                self._set_state(line, L1State.I_SD)
            return AccessResult.MISS

        self.array.touch(line)
        if state is L1State.S:
            if is_write:
                self._count["upgrades"].add()
                self._request(line, MsgType.REQ_UPG)
                self._set_state(line, L1State.S_MA)
                return AccessResult.MISS
            self._count["read_hits"].add()
            return AccessResult.HIT

        # E or M: reads and writes both hit; a write to E silently
        # upgrades to M (the exclusive state's whole point).
        if is_write:
            self._count["write_hits"].add()
            self._set_state(line, L1State.M)
        else:
            self._count["read_hits"].add()
        return AccessResult.HIT

    def _request(self, line: int, mtype: MsgType) -> None:
        if TRACE.enabled:
            TRACE.emit(
                "l1_request", cat="coherence", node=self.node,
                line=line, mtype=mtype.name,
            )
        self.send(
            CoherenceMessage(
                mtype=mtype,
                line=line,
                sender=self.node,
                dest=self.home_of(line),
                requester=self.node,
            ),
            0,
        )

    def _evict(self, line: int) -> None:
        """The Repl column: silent for clean lines, writeback for M."""
        state = self.state(line)
        if state is L1State.M:
            self._count["writebacks"].add()
            home = self.home_of(line)
            delay = 0
            if self.config.split_writeback:
                # §5.2: announce first so the home expects the data packet.
                self.send(
                    CoherenceMessage(
                        mtype=MsgType.WB_ANNOUNCE,
                        line=line,
                        sender=self.node,
                        dest=home,
                        requester=self.node,
                    ),
                    0,
                )
                delay = self.config.wb_announce_lead
            self.send(
                CoherenceMessage(
                    mtype=MsgType.WRITEBACK,
                    line=line,
                    sender=self.node,
                    dest=home,
                    requester=self.node,
                ),
                delay,
            )
        self._set_state(line, L1State.I)

    # -- directory side (Data / ExcAck / Inv / Dwg / Retry columns) -----------

    def handle(self, msg: CoherenceMessage) -> None:
        mtype = msg.mtype
        if TRACE.enabled:
            TRACE.emit(
                "l1_event", cat="coherence", node=self.node,
                line=msg.line, mtype=mtype.name,
                state=self.state(msg.line).name,
            )
        if mtype in (MsgType.DATA_S, MsgType.DATA_E, MsgType.DATA_M):
            self._on_data(msg)
        elif mtype is MsgType.EXC_ACK:
            self._on_exc_ack(msg)
        elif mtype is MsgType.INV:
            self._on_inv(msg)
        elif mtype is MsgType.DWG:
            self._on_dwg(msg)
        elif mtype is MsgType.RETRY:
            self._on_retry(msg)
        else:
            raise ValueError(f"L1 at node {self.node} cannot handle {msg}")

    def _on_data(self, msg: CoherenceMessage) -> None:
        line, state = msg.line, self.state(msg.line)
        if state is L1State.I_SD:
            if msg.mtype is MsgType.DATA_M:
                raise RuntimeError(f"DATA_M for a read miss: {msg}")
            new = L1State.S if msg.mtype is MsgType.DATA_S else L1State.E
        elif state is L1State.I_MD:
            if msg.mtype is not MsgType.DATA_M:
                raise RuntimeError(f"{msg.mtype.name} for a write miss: {msg}")
            new = L1State.M
        else:
            raise RuntimeError(f"unexpected data in {state.name}: {msg}")
        victim = self.array.insert(line)
        if victim is not None:
            self._evict(victim)
        self._set_state(line, new)
        self.on_fill(line)

    def _on_exc_ack(self, msg: CoherenceMessage) -> None:
        if self.state(msg.line) is not L1State.S_MA:
            raise RuntimeError(f"ExcAck in {self.state(msg.line).name}: {msg}")
        self._set_state(msg.line, L1State.M)
        self.on_fill(msg.line)

    def _on_inv(self, msg: CoherenceMessage) -> None:
        line, state = msg.line, self.state(msg.line)
        self._count["invalidations"].add()
        if state is L1State.M:
            self._ack(msg, MsgType.INV_ACK_DATA)
            self.array.remove(line)
            self._set_state(line, L1State.I)
            return
        # Data-less acknowledgment cases.
        if state in (L1State.S, L1State.E):
            self.array.remove(line)
            self._set_state(line, L1State.I)
        elif state is L1State.S_MA:
            # Our upgrade lost the race; it becomes a full write miss and
            # the directory reinterprets the queued Req(Upg) as Req(Ex).
            self.array.remove(line)
            self._set_state(line, L1State.I_MD)
        # I / I.SD / I.MD: acknowledge and stay (Table 2 row entries).
        suppress = msg.ack_via_confirmation and state is not L1State.E
        if suppress:
            self._count["acks_suppressed"].add()
        else:
            self._ack(msg, MsgType.INV_ACK)

    def _on_dwg(self, msg: CoherenceMessage) -> None:
        line, state = msg.line, self.state(msg.line)
        self._count["downgrades"].add()
        if state in (L1State.S, L1State.S_MA):
            # Table 2 marks both error: the line is already Shared.
            raise RuntimeError(f"Dwg to a shared line: {msg}")
        if state is L1State.M:
            self._ack(msg, MsgType.DWG_ACK_DATA)
            self._set_state(line, L1State.S)
            return
        if state is L1State.E:
            self._set_state(line, L1State.S)
        # I / I.SD / I.MD: acknowledge and stay.
        self._ack(msg, MsgType.DWG_ACK)

    def _on_retry(self, msg: CoherenceMessage) -> None:
        """NACK from the directory: resend the outstanding request."""
        state = self.state(msg.line)
        resend = {
            L1State.I_SD: MsgType.REQ_SH,
            L1State.I_MD: MsgType.REQ_EX,
            L1State.S_MA: MsgType.REQ_UPG,
        }.get(state)
        if resend is None:
            return  # the transaction already resolved another way
        self._count["retries"].add()
        self.send(
            CoherenceMessage(
                mtype=resend,
                line=msg.line,
                sender=self.node,
                dest=self.home_of(msg.line),
                requester=self.node,
            ),
            self.config.retry_delay,
        )

    def _ack(self, cause: CoherenceMessage, mtype: MsgType) -> None:
        self.send(
            CoherenceMessage(
                mtype=mtype,
                line=cause.line,
                sender=self.node,
                dest=cause.sender,
                requester=cause.requester,
            ),
            0,
        )
