"""Multi-seed experiment sweeps with summary statistics.

The paper reports single-run numbers; for a simulator with stochastic
workloads it is good practice to run several seeds and report the
spread.  :func:`sweep` runs a configuration over seeds and
applications, and :class:`SweepSummary` reports mean / min / max /
95%-confidence half-width of any scalar metric, including speedups
paired by seed (the same seed drives the same workload stream through
both networks, so pairing removes workload variance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cmp.results import CmpResults
from repro.cmp.system import CmpConfig, CmpSystem

__all__ = ["sweep", "paired_speedups", "SweepSummary"]


@dataclass(frozen=True)
class SweepSummary:
    """Summary statistics of one scalar metric across runs."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("summary of no values")

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def stdev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% confidence half-width of the mean."""
        if len(self.values) < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(len(self.values))

    def __str__(self) -> str:
        return (
            f"{self.mean:.3f} ± {self.ci95_halfwidth:.3f} "
            f"[{self.minimum:.3f}, {self.maximum:.3f}] (n={self.count})"
        )


def sweep(
    app: str,
    network: str,
    seeds: Sequence[int],
    num_nodes: int = 16,
    cycles: int = 8000,
    **config_kwargs,
) -> list[CmpResults]:
    """Run one configuration across ``seeds``; returns per-seed results."""
    if not seeds:
        raise ValueError("need at least one seed")
    results = []
    for seed in seeds:
        config = CmpConfig(
            num_nodes=num_nodes,
            app=app,
            network=network,
            seed=seed,
            **config_kwargs,
        )
        results.append(CmpSystem(config).run(cycles))
    return results


def paired_speedups(
    app: str,
    network: str,
    baseline: str,
    seeds: Sequence[int],
    num_nodes: int = 16,
    cycles: int = 8000,
    **config_kwargs,
) -> SweepSummary:
    """Seed-paired speedup of ``network`` over ``baseline``.

    Pairing by seed cancels workload randomness: both runs of a pair see
    the identical operation stream.
    """
    fast = sweep(app, network, seeds, num_nodes, cycles, **config_kwargs)
    base = sweep(app, baseline, seeds, num_nodes, cycles, **config_kwargs)
    return SweepSummary(
        tuple(f.ipc / b.ipc for f, b in zip(fast, base))
    )


def summarize(
    results: Sequence[CmpResults], metric: Callable[[CmpResults], float]
) -> SweepSummary:
    """Summary of any scalar extracted from a result list.

    >>> # summarize(runs, lambda r: r.latency_breakdown["total"])
    """
    return SweepSummary(tuple(metric(result) for result in results))
