"""The CMP system: cores + coherence + interconnect + memory.

One :class:`CmpSystem` corresponds to one row of the paper's
experiments: an application signature running on N nodes over a chosen
interconnect.  The system owns the translation between coherence
messages and network packets, including the §5 optimization wiring:

* request packets are flagged ``expects_data_reply`` (request spacing
  and resolution hints key off this);
* sharer invalidations flagged ``ack_via_confirmation`` get an
  ``on_confirmed`` hook that synthesizes the InvAck at the directory
  when the FSOI confirmation arrives (§5.1);
* split writebacks announce themselves so the home node expects the
  data packet (§5.2);
* barrier/lock releases reach subscribed waiters as confirmation-channel
  signals instead of invalidation storms (§5.1).

Local traffic (an L1 talking to the directory slice on its own node)
bypasses the network with a one-cycle latency, as in the paper's
simulator.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Optional, Union

from repro.coherence.directory import DirectoryConfig, DirectoryController
from repro.coherence.l1 import L1Config, L1Controller
from repro.coherence.messages import CoherenceMessage, MsgType
from repro.core.lanes import LaneConfig
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.optimizations import OptimizationConfig
from repro.corona.network import CoronaConfig, CoronaNetwork
from repro.cpu.core import Core, CoreConfig, CoreState
from repro.cpu.memctrl import MemoryConfig, MemoryController
from repro.cpu.sync import SyncManager
from repro.cmp.results import CmpResults
from repro.faults.plan import FaultPlan
from repro.mesh.ideal import IdealConfig, IdealNetwork
from repro.mesh.network import MeshConfig, MeshNetwork
from repro.net.packet import Packet, make_packet
from repro.obs.profile import PROFILER
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import TIMELINE
from repro.obs.trace import TRACE
from repro.util.events import CycleCalendar
from repro.util.rng import RngHub
from repro.util.stats import Histogram
from repro.workloads.splash2 import AppSignature, AppWorkload, signature

__all__ = ["CmpConfig", "CmpSystem", "run_app", "NETWORK_KINDS"]

NETWORK_KINDS = ("fsoi", "mesh", "l0", "lr1", "lr2", "corona")

#: Message types handled by the directory slice (vs. the L1 / memory).
_DIRECTORY_TYPES = frozenset(
    {
        MsgType.REQ_SH, MsgType.REQ_EX, MsgType.REQ_UPG,
        MsgType.WRITEBACK, MsgType.WB_ANNOUNCE,
        MsgType.INV_ACK, MsgType.INV_ACK_DATA,
        MsgType.DWG_ACK, MsgType.DWG_ACK_DATA,
        MsgType.MEM_ACK,
    }
)
_MEMORY_TYPES = frozenset({MsgType.MEM_READ, MsgType.MEM_WRITE})

#: §4.4 per-line ordering sentinel: a line with a message in flight but
#: nothing queued behind it.  Shared so ``_send_from`` does not allocate
#: a deque for the common line that never queues a second message.
_LINE_IN_FLIGHT: tuple = ()


@dataclass(frozen=True)
class CmpConfig:
    """One experiment's configuration (Table 3 defaults)."""

    num_nodes: int = 16
    app: Union[str, AppSignature] = "ba"
    network: str = "fsoi"
    optimizations: OptimizationConfig = field(
        default_factory=OptimizationConfig.none
    )
    memory_gbps: float = 8.8
    num_memory_channels: Optional[int] = None  # 4 (16-node) / 8 (64-node)
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    #: Figure 11 sensitivity knobs: narrower FSOI lanes / mesh links.
    fsoi_lanes: Optional["LaneConfig"] = None
    mesh_bandwidth_scale: float = 1.0
    #: §4.3.1 engineering-margin studies: probability a solo FSOI packet
    #: is corrupted by signaling errors (handled like a collision).
    fsoi_packet_error_rate: float = 0.0
    #: Fault-injection schedule (repro.faults, docs/faults.md).  An
    #: empty plan is passive; non-empty plans are FSOI-only — faults
    #: model the optical substrate's failure modes.
    faults: Optional[FaultPlan] = None
    local_latency: int = 1
    #: Pre-populate the L2/directory with the workload's reuse pools so
    #: runs measure steady state rather than the cold-start transient
    #: (the paper measures inside the parallel sections, long after the
    #: data is first touched).  Streaming regions stay cold by design.
    warm_start: bool = True
    #: Next-event fast-forward: jump over cycles where no subsystem can
    #: change state (docs/performance.md).  Results are bit-identical
    #: either way; disable here (or via REPRO_NO_FASTFORWARD=1) only to
    #: cross-check or to step the naive loop under a debugger.
    fast_forward: bool = True
    #: Columnar vectorized engines: the cores phase keeps per-node
    #: counters and deadlines in numpy arrays with replayed RNG draws,
    #: the network tick (mesh and FSOI) derives per-cycle worklists
    #: and fast-forward horizons from write-through readiness columns,
    #: and coherence messages batch through a per-cycle mailbox into
    #: fused per-type kernels (repro.coherence.vector), so passive
    #: nodes/routers/lanes cost nothing per cycle and protocol dispatch
    #: sheds its layers of indirection (docs/performance.md).  Results
    #: are bit-identical either way; disable here (or via
    #: REPRO_NO_VECTOR=1) to run the object-per-entity reference loops.
    vectorized: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.network not in NETWORK_KINDS:
            raise ValueError(
                f"unknown network {self.network!r}; choose from {NETWORK_KINDS}"
            )
        opts = self.optimizations
        any_opts = (
            opts.confirmation_ack or opts.llsc_subscription
            or opts.request_spacing or opts.resolution_hints
            or opts.split_writeback
        )
        if any_opts and self.network != "fsoi":
            raise ValueError(
                "the §5 optimizations rely on the FSOI confirmation "
                f"channel; network {self.network!r} cannot use them"
            )
        if (
            self.faults is not None
            and not self.faults.is_empty()
            and self.network != "fsoi"
        ):
            raise ValueError(
                "fault plans model the FSOI optical substrate; network "
                f"{self.network!r} cannot use them"
            )

    @property
    def app_signature(self) -> AppSignature:
        if isinstance(self.app, AppSignature):
            return self.app
        return signature(self.app)

    @property
    def memory_channels(self) -> int:
        if self.num_memory_channels is not None:
            return self.num_memory_channels
        return 4 if self.num_nodes <= 16 else 8


class CmpSystem:
    """One full chip: build with a config, then :meth:`run`."""

    def __init__(self, config: CmpConfig):
        self.config = config
        self.cycle = 0
        n = config.num_nodes
        self._rng = RngHub(config.seed)

        # The vectorized flag covers both columnar engines — the cores
        # phase (repro.cpu.vector) and the network tick (repro.mesh.vector
        # / repro.core.vector) — so it must be resolved before the
        # network is built.
        self._vector_on = config.vectorized and os.environ.get(
            "REPRO_NO_VECTOR", ""
        ) in ("", "0")
        self.network = self._build_network()
        self._is_fsoi = isinstance(self.network, FsoiNetwork)
        self._calendar = CycleCalendar()
        self._overflow: list[deque[Packet]] = [deque() for _ in range(n)]
        # Fast-forward accounting (docs/performance.md): every simulated
        # cycle is either executed by tick() or jumped by _skip_to().
        self.executed_cycles = 0
        self.skipped_cycles = 0
        self._pin_core = 0  # last core seen pinning the horizon to "now"
        self._due = self._calendar._heap  # cached guard (never rebound)
        self._fast_forward = config.fast_forward and os.environ.get(
            "REPRO_NO_FASTFORWARD", ""
        ) in ("", "0")
        self._overflow_active: set[int] = set()  # nodes with queued packets
        # Per-system packet ids: the global default factory in
        # :class:`Packet` depends on process history, which would make
        # trace streams (``args.packet``) differ between otherwise
        # identical runs.  Allocating from a per-instance counter keeps
        # seeded traces byte-reproducible across runs and engines.
        self._packet_uid = itertools.count()
        # §4.4 per-line ordering: (node, line) -> queued (msg, delay)
        # deque, or the _LINE_IN_FLIGHT sentinel when nothing is queued.
        self._line_pending: dict[tuple[int, int], "deque | tuple"] = {}

        # Memory controllers, evenly spread over the nodes.
        channels = config.memory_channels
        self.controller_nodes = [
            round((i + 0.5) * n / channels) % n for i in range(channels)
        ]
        mem_config = MemoryConfig.from_gbps(config.memory_gbps)
        self.memory = {
            node: MemoryController(node, self._sender_for(node), mem_config)
            for node in self.controller_nodes
        }

        # Coherence substrate.
        opts = config.optimizations
        l1_config = replace(
            config.l1,
            confirmation_ack=opts.confirmation_ack,
            split_writeback=opts.split_writeback,
        )
        dir_config = replace(
            config.directory, confirmation_ack=opts.confirmation_ack
        )
        self.l1s = [
            L1Controller(
                node, self._sender_for(node), self.home_of, l1_config
            )
            for node in range(n)
        ]
        self.directories = [
            DirectoryController(
                node, self._sender_for(node), self.memory_node_of, dir_config
            )
            for node in range(n)
        ]

        # Cores and synchronization.  The vectorized engine and the
        # object-per-node loop are bit-exact alternatives
        # (tests/cmp/test_vector_equivalence.py); the replayed RNGs
        # reproduce the named streams' exact draw sequences.
        self.sync = SyncManager(n, subscription=opts.llsc_subscription)
        app = config.app_signature
        self.app_label = app.label
        if self._vector_on:
            from repro.cpu.vector import (
                ColumnarCore,
                ReplayRng,
                VectorCoreEngine,
            )
            from repro.util.rng import derive_seed

            self._vector = VectorCoreEngine(self)
            self.cores = [
                ColumnarCore(
                    self._vector,
                    node,
                    AppWorkload(app, node, n),
                    self.l1s[node],
                    self.sync,
                    config.core,
                    rng=ReplayRng(derive_seed(config.seed, f"core.{node}")),
                    stats=self._vector.stats_for(node),
                )
                for node in range(n)
            ]
            self._core_phase = self._vector.core_phase
        else:
            self._vector = None
            self.cores = [
                Core(
                    node,
                    AppWorkload(app, node, n),
                    self.l1s[node],
                    self.sync,
                    config.core,
                    rng=self._rng.stream(f"core.{node}"),
                )
                for node in range(n)
            ]
            self._core_phase = self._tick_cores
        self._controllers = tuple(self.memory.values())
        if opts.llsc_subscription:
            self.sync.on_barrier_release = self._signal_barrier_release
            self.sync.on_lock_release = self._signal_lock_release

        # Figure 5: read-miss request -> reply latency distribution.
        self._request_issue: dict[tuple[int, int], int] = {}
        self.reply_latency = Histogram("reply_latency", 0, 200, 20)

        # Columnar coherence engine (repro.coherence.vector): deliveries
        # collect into a per-cycle mailbox the network drains between
        # its delivery and transmit phases, and hot stable-state
        # transitions run as fused per-MsgType kernels.  Bit-exact with
        # the inline reference dispatch kept below
        # (tests/coherence/test_vector_equivalence.py).
        if self._vector_on:
            from repro.coherence.vector import CoherenceVectorEngine

            self._coherence = CoherenceVectorEngine(self)
            on_packet = self._coherence.on_packet
            self.network.post_delivery = self._coherence.drain
        else:
            self._coherence = None
            on_packet = self._on_packet
        for node in range(n):
            self.network.set_delivery_callback(node, on_packet)

        if config.warm_start:
            self._warm_start()

    def _warm_start(self) -> None:
        """Pre-populate caches with the steady-state working set.

        Reuse/sync lines become valid in their home L2 slice (DV); each
        core's private *hot set* is additionally installed in its L1 in
        E state (directory DM with that core as owner) — those lines are
        resident essentially always once the parallel section is warm,
        and without this every run would start with an unrepresentative
        compulsory-miss burst.
        """
        from repro.coherence.directory import DirState
        from repro.coherence.l1 import L1State
        from repro.cpu.sync import SyncManager as SM

        lines: set[int] = set()
        for core in self.cores:
            lines.update(core.workload.reuse_lines())
        lines.update(self.cores[0].workload.shared_lines())
        lines.add(SM.barrier_line())
        app = self.config.app_signature
        lines.update(SM.lock_line(i) for i in range(app.lock_count))
        hot: dict[int, int] = {}  # line -> owning node
        for node, core in enumerate(self.cores):
            workload = core.workload
            for line in workload.reuse_lines()[: app.hot_lines]:
                hot[line] = node
        if self.config.directory.capacity_lines is not None:
            # Bounded slices count live entries for capacity pressure,
            # so the warm set must be materialized eagerly.
            for line in lines:
                entry = self.directories[self.home_of(line)].entry(line)
                owner = hot.get(line)
                if owner is None:
                    entry.state = DirState.DV
                    continue
                entry.state = DirState.DM
                entry.sharers = {owner}
                l1 = self.l1s[owner]
                l1.array.insert(line)
                l1._states[line] = L1State.E
            return
        # Unbounded slices (the calibrated default): only the L1-hot
        # lines get real entries; the DV bulk stays a lazily-consumed
        # warm set shared across slices (home-partitioned, so no two
        # slices ever race on one line).
        for line, owner in hot.items():
            entry = self.directories[self.home_of(line)].entry(line)
            entry.state = DirState.DM
            entry.sharers = {owner}
            l1 = self.l1s[owner]
            l1.array.insert(line)
            l1._states[line] = L1State.E
        lines.difference_update(hot)
        for directory in self.directories:
            directory.preload_valid(lines)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_network(self):
        config = self.config
        n = config.num_nodes
        kind = config.network
        if kind == "fsoi":
            fsoi_kwargs = {}
            if config.fsoi_lanes is not None:
                fsoi_kwargs["lanes"] = config.fsoi_lanes
            if config.faults is not None:
                fsoi_kwargs["faults"] = config.faults
            fsoi_cls = FsoiNetwork
            if self._vector_on:
                from repro.core.vector import VectorFsoiNetwork

                fsoi_cls = VectorFsoiNetwork
            return fsoi_cls(
                FsoiConfig(
                    num_nodes=n,
                    optimizations=config.optimizations,
                    phase_array=n > 16,
                    packet_error_rate=config.fsoi_packet_error_rate,
                    seed=config.seed,
                    **fsoi_kwargs,
                ),
                rng=self._rng.child("fsoi"),
            )
        if kind == "mesh":
            mesh_cls = MeshNetwork
            if self._vector_on:
                from repro.mesh.vector import VectorMeshNetwork

                mesh_cls = VectorMeshNetwork
            return mesh_cls(
                MeshConfig(
                    num_nodes=n, bandwidth_scale=config.mesh_bandwidth_scale
                )
            )
        if kind == "l0":
            return IdealNetwork(IdealConfig.l0(n))
        if kind == "lr1":
            return IdealNetwork(IdealConfig.lr1(n))
        if kind == "lr2":
            return IdealNetwork(IdealConfig.lr2(n))
        if kind == "corona":
            return CoronaNetwork(CoronaConfig(num_nodes=n))
        raise ValueError(f"unknown network kind {kind!r}")  # pragma: no cover

    def home_of(self, line: int) -> int:
        """Home directory slice of a line (address-interleaved)."""
        return line % self.config.num_nodes

    def memory_node_of(self, line: int) -> int:
        """Node hosting the memory channel that serves ``line``."""
        index = self.home_of(line) % self.config.memory_channels
        return self.controller_nodes[index]

    def _sender_for(self, node: int):
        def send(msg: CoherenceMessage, delay: int) -> None:
            self._send_from(node, msg, delay)

        return send

    # ------------------------------------------------------------------
    # message transport
    # ------------------------------------------------------------------

    def _send_from(self, node: int, msg: CoherenceMessage, delay: int) -> None:
        """Send with per-line point-to-point ordering (paper §4.4).

        A node delays any further message about a cache line until its
        previous message about that line has been delivered — the
        serialization the paper uses to cut down transient states.
        Without it, a meta-lane DwgAck can overtake the data-lane
        WriteBack it logically follows, which Table 2 does not handle.
        """
        if msg.mtype.is_request and msg.sender == msg.requester:
            self._request_issue[(msg.requester, msg.line)] = self.cycle
        key = (node, msg.line)
        pending = self._line_pending.get(key)
        if pending is None:
            # Mark the line in flight with the shared sentinel; the real
            # deque is only allocated if a second message actually queues
            # behind this one (most lines never do).
            self._line_pending[key] = _LINE_IN_FLIGHT
            self._transmit(node, msg, delay)
            return
        if pending is _LINE_IN_FLIGHT:
            pending = self._line_pending[key] = deque()
        pending.append((msg, delay))

    def _transmit(self, node: int, msg: CoherenceMessage, delay: int) -> None:
        # Inlines _at so the common immediate case (delay 0, remote)
        # neither allocates the action closure nor pays the extra frame.
        cycle = self.cycle
        if msg.dest == node:
            due = cycle + delay + self.config.local_latency
            if due <= cycle:
                self._complete_local(node, msg)
                return
            self._calendar.schedule(
                due, lambda: self._complete_local(node, msg)
            )
            return
        due = cycle + delay
        if due <= cycle:
            self._inject(node, msg)
            return
        self._calendar.schedule(due, lambda: self._inject(node, msg))

    def _complete_local(self, node: int, msg: CoherenceMessage) -> None:
        engine = self._coherence
        if engine is not None:
            engine.complete_local(node, msg)
            return
        if PROFILER.enabled:
            t0 = perf_counter()
            self._dispatch(msg.dest, msg)
            self._release_line(node, msg.line)
            PROFILER.add("coherence", perf_counter() - t0)
            return
        self._dispatch(msg.dest, msg)
        self._release_line(node, msg.line)

    def _release_line(self, node: int, line: int) -> None:
        key = (node, line)
        pending = self._line_pending.get(key)
        if pending is None:
            return
        if pending:
            msg, delay = pending.popleft()
            self._transmit(node, msg, delay)
        else:
            del self._line_pending[key]

    def _inject(self, node: int, msg: CoherenceMessage) -> None:
        packet = self._packetize(node, msg)
        queue = self._overflow[node]
        if queue or not self.network.try_send(packet, self.cycle):
            queue.append(packet)
            self._overflow_active.add(node)

    def _packetize(self, node: int, msg: CoherenceMessage) -> Packet:
        # The packet-field booleans are precomputed per MsgType member
        # (repro.coherence.messages) and the packet is built by the
        # validation-free fast constructor: _packetize runs once per
        # remote message on the hottest send path.
        mtype = msg.mtype
        packet = make_packet(
            node,
            msg.dest,
            mtype.lane,
            msg,
            mtype.pkt_is_reply,
            mtype.pkt_is_writeback,
            mtype.pkt_is_memory,
            mtype.pkt_expects_data,
            next(self._packet_uid),
        )
        if (
            self._is_fsoi
            and mtype is MsgType.INV
            and msg.ack_via_confirmation
        ):
            home = node
            target = msg.dest
            ack = CoherenceMessage(
                mtype=MsgType.INV_ACK,
                line=msg.line,
                sender=target,
                dest=home,
                requester=msg.requester,
            )
            directory = self.directories[home]

            def _confirm_ack() -> None:
                if PROFILER.enabled:
                    t0 = perf_counter()
                    directory.handle(ack)
                    PROFILER.add("coherence", perf_counter() - t0)
                else:
                    directory.handle(ack)

            packet.on_confirmed = _confirm_ack
        return packet

    def _on_packet(self, packet: Packet) -> None:
        if PROFILER.enabled:
            t0 = perf_counter()
            self._dispatch_packet(packet)
            PROFILER.add("coherence", perf_counter() - t0)
            return
        self._dispatch_packet(packet)

    def _dispatch_packet(self, packet: Packet) -> None:
        msg = packet.payload
        if (
            self._is_fsoi
            and msg.mtype is MsgType.WB_ANNOUNCE
            and self.config.optimizations.split_writeback
        ):
            self.network.expect_data_from(msg.dest, msg.sender)
        self._dispatch(msg.dest, msg)
        self._release_line(packet.src, msg.line)

    def _dispatch(self, node: int, msg: CoherenceMessage) -> None:
        mtype = msg.mtype
        if mtype in _MEMORY_TYPES:
            self.memory[node].handle(msg, self.cycle)
            return
        if mtype in _DIRECTORY_TYPES:
            self.directories[node].handle(msg)
            return
        # L1-bound: record read-miss reply latency for Figure 5.
        if mtype in (
            MsgType.DATA_S, MsgType.DATA_E, MsgType.DATA_M, MsgType.EXC_ACK
        ):
            issued = self._request_issue.pop((node, msg.line), None)
            if issued is not None:
                self.reply_latency.record(self.cycle - issued)
        self.l1s[node].handle(msg)

    def _at(self, cycle: int, action) -> None:
        # Clamp past/present cycles to "run now": the tick sweep has
        # already passed them, so a calendar entry would never fire (the
        # stale-key bug of the old dict calendar — see its test).
        if cycle <= self.cycle:
            action()
            return
        self._calendar.schedule(cycle, action)

    # -- §5.1 subscription signals ----------------------------------------------

    def _signal_barrier_release(self, epoch: int) -> None:
        waiting = [
            core
            for core in self.cores
            if core.state is CoreState.BARRIER_WAIT
        ]
        for core in waiting:
            self._signal(core)

    def _signal_lock_release(self, lock_id: int, waiters: list[int]) -> None:
        for node in waiters:
            self._signal(self.cores[node])

    def _signal(self, core: Core) -> None:
        delay = self.network.confirmations.delay if self._is_fsoi else 1
        if self._is_fsoi:
            self.network.confirmations.send_signal(
                self.cycle, core.release_signal
            )
        else:  # pragma: no cover - guarded by CmpConfig validation
            self._at(self.cycle + delay, core.release_signal)

    # ------------------------------------------------------------------
    # the simulation loop
    # ------------------------------------------------------------------

    def tick(self) -> None:
        if PROFILER.enabled:
            self._tick_profiled()
            return
        cycle = self.cycle
        if TRACE.enabled:
            TRACE.cycle = cycle
        if TIMELINE.enabled:
            TIMELINE.on_tick(self)
        due = self._due
        if due and due[0][0] <= cycle:
            self._calendar.run_due(cycle)  # due events
        if self._overflow_active:
            self._drain_overflow(cycle)
        for controller in self._controllers:
            controller.tick(cycle)
        self.network.tick(cycle)
        self._core_phase(cycle)
        self.executed_cycles += 1
        self.cycle = cycle + 1

    def _drain_overflow(self, cycle: int) -> None:
        # Node order matters for injection fairness; only nodes with a
        # backed-up queue are visited (the naive sweep's empty-queue
        # iterations were pure overhead).
        for node in sorted(self._overflow_active):
            queue = self._overflow[node]
            while queue and self.network.try_send(queue[0], cycle):
                queue.popleft()
            if not queue:
                self._overflow_active.discard(node)

    def _tick_cores(self, cycle: int) -> None:
        """The reference cores phase: tick every core object."""
        for core in self.cores:
            core.tick(cycle)

    def _tick_profiled(self) -> None:
        """The :meth:`tick` body with per-subsystem wall-time attribution.

        Kept as a separate method so the common (profiling-off) path
        pays nothing; the subsystem order must mirror :meth:`tick`.
        """
        cycle = self.cycle
        if TRACE.enabled:
            TRACE.cycle = cycle
        if TIMELINE.enabled:
            TIMELINE.on_tick(self)
        # Coherence dispatch runs *inside* the calendar window (local
        # completions) and the network window (packet deliveries); the
        # dispatch sites accrue against "coherence" and the enclosing
        # windows subtract the delta, so handler cost is attributed to
        # the protocol rather than lumped into transport.
        t0 = perf_counter()
        coh0 = PROFILER.phase_seconds("coherence")
        due = self._due
        if due and due[0][0] <= cycle:
            self._calendar.run_due(cycle)  # due events
        t1 = perf_counter()
        coh1 = PROFILER.phase_seconds("coherence")
        PROFILER.add("calendar", (t1 - t0) - (coh1 - coh0))
        if self._overflow_active:
            self._drain_overflow(cycle)
        t2 = perf_counter()
        PROFILER.add("overflow", t2 - t1)
        for controller in self._controllers:
            controller.tick(cycle)
        t3 = perf_counter()
        PROFILER.add("memory", t3 - t2)
        self.network.tick(cycle)
        t4 = perf_counter()
        coh2 = PROFILER.phase_seconds("coherence")
        PROFILER.add("network", (t4 - t3) - (coh2 - coh1))
        self._core_phase(cycle)
        PROFILER.add("cores", perf_counter() - t4)
        PROFILER.cycle_done()
        self.executed_cycles += 1
        self.cycle = cycle + 1

    # -- next-event fast-forward (docs/performance.md) ------------------

    def _next_event(self) -> Optional[int]:
        """Min over every subsystem's event horizon.

        Returns the current cycle when any subsystem can change state
        *now* (the loop must tick), a future cycle when everything is
        provably inert until then (the loop may jump), or ``None`` when
        the whole system is quiescent (nothing will ever happen again).
        """
        cycle = self.cycle
        # Pin cache: a RUNNING core pins the horizon to "now" no matter
        # what the other subsystems report, and cores run in multi-cycle
        # bursts — remembering the last pinning core turns the common
        # fully-active case into a single state check.
        if self.cores[self._pin_core].state is CoreState.RUNNING:
            return cycle
        horizon = None
        due = self._due
        if due:
            c = due[0][0]
            if c <= cycle:  # pragma: no cover - _at clamps past cycles
                return cycle
            horizon = c
        if self._overflow_active:
            # A backed-up injection retries (and counts a refusal)
            # every cycle, exactly as the naive loop does.
            return cycle
        if self._coherence is not None:
            c = self._coherence.next_event(cycle)
            if c is not None:  # pragma: no cover - drained within the tick
                return cycle
        if self._vector is not None:
            c = self._vector.next_core_event(cycle)
            if c is not None:
                if c <= cycle:
                    return cycle
                if horizon is None or c < horizon:
                    horizon = c
        else:
            for index, core in enumerate(self.cores):
                c = core.next_event(cycle)
                if c is not None:
                    if c <= cycle:
                        if core.state is CoreState.RUNNING:
                            self._pin_core = index
                        return cycle
                    if horizon is None or c < horizon:
                        horizon = c
        for controller in self._controllers:
            c = controller.next_event(cycle)
            if c is not None:
                if c <= cycle:
                    return cycle
                if horizon is None or c < horizon:
                    horizon = c
        c = self.network.next_event(cycle)
        if c is not None:
            if c <= cycle:
                return cycle
            if horizon is None or c < horizon:
                horizon = c
        if TIMELINE.enabled:
            # Cap the jump at the next window boundary so samples land
            # on the same cycles whether or not the loop fast-forwards.
            # Only the loop executed/skipped split changes — results
            # stay bit-identical (any prefix of a legal jump is legal).
            c = TIMELINE.due_cycle(self)
            if c is not None:
                if c <= cycle:
                    return cycle
                if horizon is None or c < horizon:
                    horizon = c
        return horizon

    def _skip_to(self, end: int) -> None:
        """Jump the clock from ``self.cycle`` to ``end`` in one step.

        Every per-cycle side effect the naive loop would have produced
        over ``[cycle, end)`` is applied in bulk: core stall/sync
        counters (and lock-hold countdowns), the network's elapsed-slot
        tallies.  Tracing and profiling record the span instead of
        inhibiting the skip.
        """
        start = self.cycle
        gap = end - start
        if gap <= 0:  # pragma: no cover - callers guarantee end > cycle
            return
        if self._vector is None:
            for core in self.cores:
                core.skip(gap)
        # else: the columnar ledger accrues the jumped span lazily at
        # the next transition or flush — no per-core work at all.
        self.network.skip(start, end)
        self.skipped_cycles += gap
        if TRACE.enabled:
            TRACE.cycle = start
            TRACE.emit("fast_forward", cat="loop", cycle=start, dur=gap)
        if PROFILER.enabled:
            PROFILER.skip(gap)
        self.cycle = end

    def _step(self, target: int) -> None:
        """Advance by one tick or one fast-forward jump, capped at
        ``target`` (exclusive)."""
        if PROFILER.enabled:
            t0 = perf_counter()
            horizon = self._next_event()
            PROFILER.add("horizon", perf_counter() - t0)
        else:
            horizon = self._next_event()
        if horizon is None:
            self._skip_to(target)
        elif horizon > self.cycle:
            self._skip_to(min(horizon, target))
        else:
            self.tick()

    def run(self, cycles: int) -> CmpResults:
        """Simulate ``cycles`` cycles and collect the results."""
        target = self.cycle + cycles
        if self._fast_forward:
            while self.cycle < target:
                self._step(target)
        else:
            while self.cycle < target:
                self.tick()
        if TIMELINE.enabled:
            TIMELINE.on_run_end(self)  # final (possibly partial) window
        return self._results()

    def run_until_instructions(
        self, instructions: int, max_cycles: int = 10_000_000
    ) -> CmpResults:
        """Run until the cores have retired ``instructions`` in total.

        This is the paper's own methodology — execution *time* for a
        fixed workload ("we measure the same workload"); the speedup of
        two configurations is then their cycle-count ratio, identical
        to the IPC ratio only in steady state.

        The fast-forward path checks the work target once per step:
        instruction counts only move on executed ticks (no core is
        RUNNING during a jump), so the stop cycle matches the naive
        loop's exactly.
        """
        if instructions < 1:
            raise ValueError(f"need a positive work target: {instructions}")
        limit = self.cycle + max_cycles
        while self.cycle < limit:
            if sum(core.instructions for core in self.cores) >= instructions:
                if TIMELINE.enabled:
                    TIMELINE.on_run_end(self)
                return self._results()
            if self._fast_forward:
                self._step(limit)
            else:
                self.tick()
        raise RuntimeError(
            f"work target {instructions} not reached within {max_cycles} cycles"
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def metrics_registry(self) -> MetricsRegistry:
        """One registry over every subsystem's live stats.

        Mounts the interconnect's stat tree plus the per-node L1,
        directory, core and memory-controller groups, and gauges for
        run progress, sync totals and the confirmation channel.  The
        registry reads live objects, so build it once and snapshot
        whenever needed (``repro trace --metrics``, the sweep metric
        archive, the golden metrics tests).
        """
        reg = MetricsRegistry(f"{self.app_label}.{self.config.network}")
        reg.mount("network", self.network.stats.group)
        for node, l1 in enumerate(self.l1s):
            reg.mount(f"l1.n{node:02d}", l1.stats)
        for node, directory in enumerate(self.directories):
            reg.mount(f"directory.n{node:02d}", directory.stats)
        for node, core in enumerate(self.cores):
            reg.mount(f"core.n{node:02d}", core.stats)
        for node in sorted(self.memory):
            reg.mount(f"memory.n{node:02d}", self.memory[node].stats)
        reg.gauge("run.app", self.app_label)
        reg.gauge("run.network", self.config.network)
        reg.gauge("run.num_nodes", self.config.num_nodes)
        reg.gauge("run.cycles", lambda: self.cycle)
        reg.gauge(
            "run.instructions",
            lambda: sum(core.instructions for core in self.cores),
        )
        reg.gauge("sync.barriers_completed", lambda: self.sync.barriers_completed)
        reg.gauge("sync.lock_acquisitions", lambda: self.sync.lock_acquisitions)
        reg.gauge("sync.lock_retries", lambda: self.sync.lock_retries)
        reg.gauge(
            "reply_latency",
            lambda: {
                "count": self.reply_latency.count,
                "fractions": self.reply_latency.fractions(),
            },
        )
        if TRACE.enabled:
            # Gauges exist only while tracing so untraced metrics
            # snapshots stay byte-identical (the fault-gauge pattern).
            # ``dropped`` counts ring-buffer overwrites — a non-zero
            # value means the exported trace is a truncated suffix.
            reg.gauge("trace.emitted", lambda: TRACE.emitted)
            reg.gauge("trace.dropped", lambda: TRACE.dropped)
        if self._is_fsoi:
            reg.gauge(
                "confirmation.confirmations_sent",
                lambda: self.network.confirmations.confirmations_sent,
            )
            reg.gauge(
                "confirmation.signals_sent",
                lambda: self.network.confirmations.signals_sent,
            )
            if self.network.fault_injector is not None:
                # Gauges exist only under an active plan so fault-free
                # metrics snapshots stay byte-identical.
                reg.gauge(
                    "confirmation.confirmations_dropped",
                    lambda: self.network.confirmations.confirmations_dropped,
                )
                reg.gauge("fault.plan_label", self.config.faults.label)
                reg.gauge("fault.plan_hash", self.config.faults.content_hash())
        return reg

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _results(self) -> CmpResults:
        if self._vector is not None:
            self._vector.flush()

        def merge(groups) -> dict[str, int]:
            out: dict[str, int] = {}
            for group in groups:
                for key, value in group.as_dict().items():
                    if isinstance(value, int):
                        out[key] = out.get(key, 0) + value
            return out

        net = self.network.stats
        fsoi: dict = {}
        if self._is_fsoi:
            from repro.net.packet import LaneKind

            lane_groups = self.network.stats.group.as_dict()
            fsoi = {
                "meta_transmissions": lane_groups["meta"]["transmissions"],
                "data_transmissions": lane_groups["data"]["transmissions"],
                "meta_tx_probability": self.network.transmission_probability(
                    LaneKind.META
                ),
                "data_tx_probability": self.network.transmission_probability(
                    LaneKind.DATA
                ),
                "meta_collision_rate": self.network.collision_rate(LaneKind.META),
                "data_collision_rate": self.network.collision_rate(LaneKind.DATA),
                "meta_collisions_per_node_slot": (
                    self.network.collision_events_per_node_slot(LaneKind.META)
                ),
                "meta_resolution_delay": (
                    self.network.mean_resolution_delay(LaneKind.META)
                ),
                "data_resolution_delay": (
                    self.network.mean_resolution_delay(LaneKind.DATA)
                ),
                "data_collision_breakdown": self.network.data_collision_breakdown(),
                "hints": self.network.hint_summary(),
                "confirmations": self.network.confirmations.confirmations_sent,
                "signals": self.network.confirmations.signals_sent,
                "phase_array": self.network.phase_array_summary(),
            }
            if self.network.fault_injector is not None:
                fsoi["faults"] = self.network.fault_summary()
        mesh_activity = (
            self.network.activity() if isinstance(self.network, MeshNetwork) else {}
        )
        return CmpResults(
            app=self.app_label,
            network=self.config.network,
            num_nodes=self.config.num_nodes,
            cycles=self.cycle,
            instructions=sum(c.instructions for c in self.cores),
            instructions_per_core=[c.instructions for c in self.cores],
            latency_breakdown=net.breakdown(),
            packets_sent=int(net.sent),
            packets_delivered=int(net.delivered),
            bits_sent=int(net.bits_sent),
            l1=merge(c.stats for c in self.l1s),
            directory=merge(d.stats for d in self.directories),
            memory=merge(m.stats for m in self.memory.values()),
            sync={
                "barriers_completed": self.sync.barriers_completed,
                "lock_acquisitions": self.sync.lock_acquisitions,
                "lock_retries": self.sync.lock_retries,
            },
            core_cycles={
                "busy": sum(int(c.busy_cycles) for c in self.cores),
                "stall": sum(int(c.stall_cycles) for c in self.cores),
                "sync": sum(int(c.sync_cycles) for c in self.cores),
            },
            reply_latency=self.reply_latency,
            fsoi=fsoi,
            mesh_activity=mesh_activity,
            traffic_matrix=self.network.traffic_matrix(),
            loop={
                "executed_cycles": self.executed_cycles,
                "skipped_cycles": self.skipped_cycles,
            },
        )


def run_app(
    app: str,
    network: str,
    num_nodes: int = 16,
    cycles: int = 20_000,
    optimizations: Optional[OptimizationConfig] = None,
    seed: int = 0,
    **config_kwargs,
) -> CmpResults:
    """Convenience one-call experiment: build, run, return results."""
    config = CmpConfig(
        num_nodes=num_nodes,
        app=app,
        network=network,
        optimizations=optimizations or OptimizationConfig.none(),
        seed=seed,
        **config_kwargs,
    )
    return CmpSystem(config).run(cycles)
