"""Measurement container produced by a CMP run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.stats import Histogram

__all__ = ["CmpResults"]


@dataclass
class CmpResults:
    """Everything a benchmark needs from one simulation run.

    ``ipc`` (total instructions per cycle across all cores) is the
    progress metric: for a fixed workload window, the speedup of
    configuration A over B is ``A.ipc / B.ipc`` — the same ratio as the
    paper's execution-time comparison.
    """

    app: str
    network: str
    num_nodes: int
    cycles: int
    instructions: int
    instructions_per_core: list[int]
    latency_breakdown: dict[str, float]
    packets_sent: int
    packets_delivered: int
    bits_sent: int
    l1: dict[str, int]
    directory: dict[str, int]
    memory: dict[str, int]
    sync: dict[str, int]
    core_cycles: dict[str, int]
    reply_latency: Histogram
    fsoi: dict = field(default_factory=dict)       # collision/hint details
    mesh_activity: dict = field(default_factory=dict)  # router switching
    traffic_matrix: list = field(default_factory=list)  # [src][dst] packets
    #: Simulation-loop accounting: {"executed_cycles", "skipped_cycles"}.
    #: Wall-clock bookkeeping only — everything else in the result is
    #: bit-identical whether cycles were executed or fast-forwarded.
    loop: dict = field(default_factory=dict)
    #: Health annotations (repro.obs.health): HealthEvent dicts attached
    #: by the CLI / sweep runner when watchdogs fired.  Serialized only
    #: when non-empty so clean-run results stay byte-identical to
    #: pre-watchdog golden snapshots.
    health: list = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "CmpResults") -> float:
        """Execution-rate ratio versus ``baseline`` (same app & window)."""
        if baseline.app != self.app or baseline.num_nodes != self.num_nodes:
            raise ValueError("speedup requires the same app and system size")
        if baseline.ipc == 0:
            raise ZeroDivisionError("baseline made no progress")
        return self.ipc / baseline.ipc

    def summary(self) -> dict:
        return {
            "app": self.app,
            "network": self.network,
            "ipc": round(self.ipc, 4),
            "packet_latency": {
                k: round(v, 2) for k, v in self.latency_breakdown.items()
            },
            "packets": self.packets_delivered,
        }

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot of everything in the result."""
        hist = self.reply_latency
        out = {
            "app": self.app,
            "network": self.network,
            "num_nodes": self.num_nodes,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "instructions_per_core": list(self.instructions_per_core),
            "latency_breakdown": dict(self.latency_breakdown),
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "bits_sent": self.bits_sent,
            "l1": dict(self.l1),
            "directory": dict(self.directory),
            "memory": dict(self.memory),
            "sync": dict(self.sync),
            "core_cycles": dict(self.core_cycles),
            "reply_latency": {
                "lo": hist.lo,
                "hi": hist.hi,
                "nbins": hist.nbins,
                "bins": list(hist.bins),
                "count": hist.count,
            },
            "fsoi": dict(self.fsoi),
            "mesh_activity": dict(self.mesh_activity),
            "traffic_matrix": [list(row) for row in self.traffic_matrix],
            "loop": dict(self.loop),
        }
        if self.health:
            out["health"] = [dict(event) for event in self.health]
        return out

    def save(self, path) -> None:
        """Write the result as JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)

    @classmethod
    def from_dict(cls, data: dict) -> "CmpResults":
        """Inverse of :meth:`to_dict`."""
        spec = data["reply_latency"]
        hist = Histogram("reply_latency", spec["lo"], spec["hi"], spec["nbins"])
        hist.bins = list(spec["bins"])
        hist.count = spec["count"]
        return cls(
            app=data["app"],
            network=data["network"],
            num_nodes=data["num_nodes"],
            cycles=data["cycles"],
            instructions=data["instructions"],
            instructions_per_core=list(data["instructions_per_core"]),
            latency_breakdown=dict(data["latency_breakdown"]),
            packets_sent=data["packets_sent"],
            packets_delivered=data["packets_delivered"],
            bits_sent=data["bits_sent"],
            l1=dict(data["l1"]),
            directory=dict(data["directory"]),
            memory=dict(data["memory"]),
            sync=dict(data["sync"]),
            core_cycles=dict(data["core_cycles"]),
            reply_latency=hist,
            fsoi=dict(data["fsoi"]),
            mesh_activity=dict(data["mesh_activity"]),
            traffic_matrix=[list(row) for row in data["traffic_matrix"]],
            loop=dict(data.get("loop", {})),
            health=[dict(event) for event in data.get("health", [])],
        )

    @classmethod
    def load(cls, path) -> "CmpResults":
        """Read a result saved by :meth:`save`."""
        import json

        with open(path) as handle:
            return cls.from_dict(json.load(handle))
