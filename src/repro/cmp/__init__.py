"""The full chip-multiprocessor simulator.

Wires cores, L1 controllers, directory slices, memory controllers and
any of the interconnect models into one system (Table 3's
configuration), runs a workload, and produces the measurements behind
Figures 5–11 and Tables 3–4.
"""

from repro.cmp.results import CmpResults
from repro.cmp.sweep import SweepSummary, paired_speedups, sweep
from repro.cmp.system import CmpConfig, CmpSystem, run_app

__all__ = [
    "CmpConfig",
    "CmpSystem",
    "CmpResults",
    "run_app",
    "SweepSummary",
    "paired_speedups",
    "sweep",
]
