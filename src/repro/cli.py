"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``link``
    Print the Table 1 link budget (and the per-component loss).
``config [--nodes N]``
    Print the Table 3 system configuration.
``run --app oc --network fsoi [--nodes N] [--cycles C] [--optimized]``
    Run one CMP experiment and print its results.
``compare --app oc [--nodes N] [--cycles C]``
    Run FSOI and the mesh baseline side by side: speedup + energy.
``thermal [--power W]``
    Evaluate the §3.3 cooling options at a given chip power.
"""

from __future__ import annotations

import argparse
import sys

from repro.cmp import CmpConfig, CmpSystem, run_app
from repro.cmp.system import NETWORK_KINDS
from repro.config import table3
from repro.core.link import OpticalLink
from repro.core.optimizations import OptimizationConfig
from repro.power import CoolingOption, SystemPowerModel, ThermalStack
from repro.workloads import APPLICATIONS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Intra-Chip Free-Space Optical "
        "Interconnect' (ISCA 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("link", help="Table 1 optical link budget")

    config = sub.add_parser("config", help="Table 3 system configuration")
    config.add_argument("--nodes", type=int, default=16, choices=(16, 64))

    run = sub.add_parser("run", help="run one CMP experiment")
    run.add_argument("--app", default="oc", choices=sorted(APPLICATIONS))
    run.add_argument("--network", default="fsoi", choices=NETWORK_KINDS)
    run.add_argument("--nodes", type=int, default=16)
    run.add_argument("--cycles", type=int, default=10_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--optimized", action="store_true",
        help="enable all §5 optimizations (FSOI only)",
    )

    compare = sub.add_parser("compare", help="FSOI vs mesh on one app")
    compare.add_argument("--app", default="oc", choices=sorted(APPLICATIONS))
    compare.add_argument("--nodes", type=int, default=16)
    compare.add_argument("--cycles", type=int, default=10_000)
    compare.add_argument("--seed", type=int, default=0)

    thermal = sub.add_parser("thermal", help="§3.3 cooling-option survey")
    thermal.add_argument("--power", type=float, default=121.0)

    return parser


def _cmd_link() -> int:
    link = OpticalLink()
    print("Table 1 — optical link parameters")
    for key, value in link.table1().items():
        print(f"  {key:<28} {value:g}")
    print("loss budget (dB):")
    for key, value in link.path.loss_budget().items():
        print(f"  {key:<28} {value:.3f}")
    return 0


def _cmd_config(args) -> int:
    print(table3(args.nodes).render())
    return 0


def _cmd_run(args) -> int:
    optimizations = (
        OptimizationConfig.all() if args.optimized else OptimizationConfig.none()
    )
    result = run_app(
        args.app,
        args.network,
        num_nodes=args.nodes,
        cycles=args.cycles,
        optimizations=optimizations,
        seed=args.seed,
    )
    print(f"{args.app} on {args.network}, {args.nodes} nodes, "
          f"{args.cycles} cycles:")
    print(f"  instructions  {result.instructions:,}  (IPC {result.ipc:.3f})")
    print(f"  packets       {result.packets_delivered:,} delivered")
    breakdown = result.latency_breakdown
    print("  latency       "
          f"total {breakdown['total']:.2f} = "
          f"queuing {breakdown['queuing']:.2f} + "
          f"scheduling {breakdown['scheduling']:.2f} + "
          f"network {breakdown['network']:.2f} + "
          f"collisions {breakdown['collision_resolution']:.2f}")
    if result.fsoi:
        print(f"  meta lane     p={result.fsoi['meta_tx_probability']:.4f}, "
              f"collisions {100 * result.fsoi['meta_collision_rate']:.2f}%")
        print(f"  data lane     p={result.fsoi['data_tx_probability']:.4f}, "
              f"collisions {100 * result.fsoi['data_collision_rate']:.2f}%")
    return 0


def _cmd_compare(args) -> int:
    runs = {}
    for network in ("mesh", "fsoi"):
        config = CmpConfig(
            num_nodes=args.nodes, app=args.app, network=network, seed=args.seed
        )
        runs[network] = CmpSystem(config).run(args.cycles)
    model = SystemPowerModel()
    reports = {name: model.report(run) for name, run in runs.items()}
    speedup = runs["fsoi"].speedup_over(runs["mesh"])
    relative = reports["fsoi"].relative_to(reports["mesh"])
    print(f"{args.app}, {args.nodes} nodes, {args.cycles} cycles:")
    print(f"  mesh latency  {runs['mesh'].latency_breakdown['total']:.1f} cycles, "
          f"FSOI {runs['fsoi'].latency_breakdown['total']:.1f}")
    print(f"  speedup       {speedup:.3f}x")
    print(f"  energy        {relative['total']:.3f} of mesh "
          f"(network {relative['network']:.3f})")
    print(f"  power         {reports['mesh'].average_power:.0f} W -> "
          f"{reports['fsoi'].average_power:.0f} W")
    edp = (
        reports["mesh"].energy_delay_product()
        / reports["fsoi"].energy_delay_product()
    )
    print(f"  EDP           {edp:.2f}x better")
    return 0


def _cmd_thermal(args) -> int:
    stack = ThermalStack()
    print(f"cooling survey at {args.power:.0f} W chip power:")
    for option, report in stack.survey(args.power).items():
        verdict = "OK" if report.feasible else "EXCEEDS LIMITS"
        print(f"  {option.value:<17} CMOS {report.cmos_junction:6.1f} C  "
              f"VCSEL {report.vcsel_layer:6.1f} C  {verdict}")
    for option in CoolingOption:
        print(f"  {option.value:<17} sustains up to "
              f"{stack.max_power(option):.0f} W")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "link":
            return _cmd_link()
        if args.command == "config":
            return _cmd_config(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "thermal":
            return _cmd_thermal(args)
    except BrokenPipeError:  # pragma: no cover - e.g. `repro link | head`
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
