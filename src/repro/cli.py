"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``link``
    Print the Table 1 link budget (and the per-component loss).
``config [--nodes N]``
    Print the Table 3 system configuration.
``run --app oc --network fsoi [--nodes N] [--cycles C] [--optimized]``
    Run one CMP experiment and print its results.
``compare --app oc [--nodes N] [--cycles C]``
    Run FSOI and the mesh baseline side by side: speedup + energy.
``sweep --apps ba,lu --networks fsoi,mesh [--seeds 0,1] [--workers N]``
    Run a whole experiment grid in parallel with on-disk result
    caching (see ``repro.sweep`` and docs/sweeps.md).
``trace --app oc --network fsoi --out trace.jsonl``
    Run one experiment with event tracing on and export the trace as
    chrome://tracing-compatible JSONL (see docs/observability.md).
``faults --app oc --kill 3:data --drop-confirmations 0.05``
    Run one fault-injected FSOI experiment and print the resilience
    report (see repro.faults and docs/faults.md).
``profile --app oc --network fsoi [--json]``
    Run one experiment with per-phase wall-time profiling and print
    the cycle-loop attribution table (or a JSON document).
``top --app oc --network fsoi [--once] [--from timeline.jsonl]``
    Live dashboard of one running experiment: per-path sparkline rows
    from the windowed timeline, the health watchdogs' verdict and an
    ETA, redrawn as the run progresses (see docs/observability.md).
``report [--apps oc] [--out report.html]``
    Run (or ingest) a sweep, file it in the analytics run ledger,
    validate it against the paper's figure tolerance bands and render
    the report (terminal + optional HTML/Markdown) — see
    docs/analytics.md.
``bench [--compare]``
    Run the pinned perf suite, write ``BENCH_<git-sha>.json``, and
    with ``--compare`` gate it against the previous snapshot (exits
    non-zero on a regression past the threshold).
``thermal [--power W]``
    Evaluate the §3.3 cooling options at a given chip power.
"""

from __future__ import annotations

import argparse
import sys

from repro.cmp import CmpConfig, CmpSystem
from repro.cmp.system import NETWORK_KINDS
from repro.config import table3
from repro.core.link import OpticalLink
from repro.core.optimizations import OptimizationConfig
from repro.power import CoolingOption, SystemPowerModel, ThermalStack
from repro.workloads import APPLICATIONS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Intra-Chip Free-Space Optical "
        "Interconnect' (ISCA 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("link", help="Table 1 optical link budget")

    config = sub.add_parser("config", help="Table 3 system configuration")
    config.add_argument("--nodes", type=int, default=16, choices=(16, 64))

    run = sub.add_parser("run", help="run one CMP experiment")
    run.add_argument("--app", default="oc", choices=sorted(APPLICATIONS))
    run.add_argument("--network", default="fsoi", choices=NETWORK_KINDS)
    run.add_argument("--nodes", type=int, default=16)
    run.add_argument("--cycles", type=int, default=10_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--optimized", action="store_true",
        help="enable all §5 optimizations (FSOI only)",
    )
    run.add_argument(
        "--timeline", default=None, metavar="TIMELINE.JSONL",
        help="collect windowed time-series telemetry and write the "
        "per-window delta archive here (see docs/observability.md)",
    )
    run.add_argument(
        "--timeline-window", type=int, default=100, metavar="CYCLES",
        help="timeline sampling window in cycles (default: %(default)s)",
    )
    run.add_argument(
        "--openmetrics", default=None, metavar="METRICS.TXT",
        help="also export the timeline totals as OpenMetrics text "
        "(implies timeline collection)",
    )
    run.add_argument(
        "--health", action="store_true",
        help="run the invariant/anomaly watchdogs after the run and "
        "print the health report",
    )
    run.add_argument(
        "--strict-health", action="store_true",
        help="like --health, but exit non-zero if any watchdog fires",
    )

    compare = sub.add_parser("compare", help="FSOI vs mesh on one app")
    compare.add_argument("--app", default="oc", choices=sorted(APPLICATIONS))
    compare.add_argument("--nodes", type=int, default=16)
    compare.add_argument("--cycles", type=int, default=10_000)
    compare.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid in parallel with result caching",
    )
    sweep.add_argument(
        "--apps", default="oc",
        help="comma-separated application labels (e.g. ba,lu,oc,ro)",
    )
    sweep.add_argument(
        "--networks", default="fsoi,mesh",
        help=f"comma-separated networks from {','.join(NETWORK_KINDS)}",
    )
    sweep.add_argument(
        "--nodes", default="16", help="comma-separated node counts"
    )
    sweep.add_argument(
        "--seeds", default="0", help="comma-separated experiment seeds"
    )
    sweep.add_argument("--cycles", type=int, default=8_000)
    sweep.add_argument(
        "--optimized", action="store_true",
        help="also sweep FSOI with all §5 optimizations enabled",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = run inline, no subprocesses)",
    )
    sweep.add_argument(
        "--cache-dir", default=".repro-sweep-cache",
        help="on-disk result cache directory (default: %(default)s)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="always recompute; do not read or write the cache",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None,
        help="per-point wall-clock limit in seconds",
    )
    sweep.add_argument(
        "--out", default=None, metavar="RESULTS.JSONL",
        help="stream per-point results to this JSONL file",
    )
    sweep.add_argument(
        "--metrics-dir", default=None, metavar="DIR",
        help="archive each executed point's metrics-registry snapshot "
        "as one JSON file in this directory",
    )
    sweep.add_argument(
        "--timeline-dir", default=None, metavar="DIR",
        help="archive each executed point's windowed timeline as one "
        "JSONL file in this directory",
    )
    sweep.add_argument(
        "--timeline-window", type=int, default=100, metavar="CYCLES",
        help="timeline sampling window for --timeline-dir "
        "(default: %(default)s)",
    )
    sweep.add_argument(
        "--spec", default=None, metavar="SPEC.JSON",
        help="load the grid from a JSON SweepSpec file instead of flags",
    )
    sweep.add_argument(
        "--baseline", default="mesh",
        help="network to report paired speedups against (default: mesh)",
    )
    sweep.add_argument(
        "--live", action="store_true",
        help="single live progress line (counters + ETA + in-flight "
        "points) instead of one line per completed point",
    )

    report = sub.add_parser(
        "report",
        help="sweep + run ledger + paper-figure validation report",
    )
    report.add_argument(
        "--apps", default="oc",
        help="comma-separated application labels (e.g. ba,lu,oc,ro)",
    )
    report.add_argument(
        "--networks", default="fsoi,mesh",
        help=f"comma-separated networks from {','.join(NETWORK_KINDS)}",
    )
    report.add_argument(
        "--nodes", default="16", help="comma-separated node counts"
    )
    report.add_argument(
        "--seeds", default="0", help="comma-separated experiment seeds"
    )
    report.add_argument("--cycles", type=int, default=8_000)
    report.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = run inline, no subprocesses)",
    )
    report.add_argument(
        "--cache-dir", default=".repro-sweep-cache",
        help="on-disk result cache directory (default: %(default)s)",
    )
    report.add_argument(
        "--no-cache", action="store_true",
        help="always recompute; do not read or write the cache",
    )
    report.add_argument(
        "--from", dest="from_jsonl", default=None, metavar="RESULTS.JSONL",
        help="validate an existing sweep results file instead of "
        "running a sweep",
    )
    report.add_argument(
        "--metrics-dir", default=None, metavar="DIR",
        help="per-point metrics-registry archive directory to attach "
        "to the ledger run",
    )
    report.add_argument(
        "--timeline-dir", default=None, metavar="DIR",
        help="per-point timeline archive directory to collect and "
        "attach to the ledger run",
    )
    report.add_argument(
        "--ledger", default=".repro-ledger.sqlite", metavar="LEDGER.SQLITE",
        help="run-ledger SQLite path; pass '' to skip ingestion "
        "(default: %(default)s)",
    )
    report.add_argument(
        "--label", default="", help="free-form label filed with the run"
    )
    report.add_argument(
        "--diff", action="store_true",
        help="also diff this run against the previous run in the ledger",
    )
    report.add_argument(
        "--out", default=None, metavar="REPORT.{HTML,MD}",
        help="also write the report as self-contained HTML (.html/.htm) "
        "or Markdown (any other suffix)",
    )
    report.add_argument(
        "--live", action="store_true",
        help="live progress line while the sweep runs",
    )

    bench = sub.add_parser(
        "bench", help="pinned perf suite + regression gate"
    )
    bench.add_argument(
        "--micro-cycles", type=int, default=None,
        help="cycles per micro profile run (default: the pinned suite's)",
    )
    bench.add_argument(
        "--macro-cycles", type=int, default=None,
        help="cycles per macro sweep point (default: the pinned suite's)",
    )
    bench.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the macro sweep",
    )
    bench.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding BENCH_<sha>.json snapshots "
        "(default: %(default)s)",
    )
    bench.add_argument(
        "--no-write", action="store_true",
        help="do not write the fresh snapshot to --root",
    )
    bench.add_argument(
        "--snapshot", default=None, metavar="BENCH.JSON",
        help="load this snapshot as the current measurement instead of "
        "running the suite (for re-checking a gate offline)",
    )
    bench.add_argument(
        "--compare", action="store_true",
        help="gate against a previous snapshot; exit 1 on regression",
    )
    bench.add_argument(
        "--against", default=None, metavar="BENCH.JSON",
        help="baseline snapshot for --compare (default: the most recent "
        "other snapshot in --root)",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative slowdown that counts as a regression "
        "(default: %(default)s)",
    )

    def add_run_args(parser_) -> None:
        parser_.add_argument("--app", default="oc", choices=sorted(APPLICATIONS))
        parser_.add_argument("--network", default="fsoi", choices=NETWORK_KINDS)
        parser_.add_argument("--nodes", type=int, default=16)
        parser_.add_argument("--cycles", type=int, default=10_000)
        parser_.add_argument("--seed", type=int, default=0)
        parser_.add_argument(
            "--optimized", action="store_true",
            help="enable all §5 optimizations (FSOI only)",
        )

    trace = sub.add_parser(
        "trace", help="run one experiment with event tracing"
    )
    add_run_args(trace)
    trace.add_argument(
        "--out", default="trace.jsonl", metavar="TRACE.JSONL",
        help="trace-event JSONL output path (default: %(default)s)",
    )
    trace.add_argument(
        "--chrome", default=None, metavar="TRACE.JSON",
        help="also write a {'traceEvents': [...]} file for direct "
        "loading in chrome://tracing / Perfetto",
    )
    trace.add_argument(
        "--buffer", type=int, default=1 << 20,
        help="trace ring-buffer capacity in events (default: %(default)s)",
    )
    trace.add_argument(
        "--categories", default=None,
        help="comma-separated category allow-list "
        "(fsoi,mesh,coherence,confirmation,backoff,fault; default: all)",
    )
    trace.add_argument(
        "--node", type=int, default=None,
        help="export only events of this node",
    )
    trace.add_argument(
        "--lane", default=None, choices=("meta", "data"),
        help="export only events of this lane",
    )
    trace.add_argument(
        "--metrics", default=None, metavar="METRICS.{JSON,CSV}",
        help="also export the run's metrics-registry snapshot",
    )
    trace.add_argument(
        "--summary", action="store_true",
        help="print a per-category/per-name event summary after the run",
    )
    trace.add_argument(
        "--timeline", action="store_true",
        help="also collect the windowed timeline and merge its counter "
        "events (ph 'C') into the exported trace files",
    )
    trace.add_argument(
        "--timeline-window", type=int, default=100, metavar="CYCLES",
        help="timeline sampling window for --timeline "
        "(default: %(default)s)",
    )

    profile = sub.add_parser(
        "profile", help="run one experiment with cycle-loop profiling"
    )
    add_run_args(profile)
    profile.add_argument(
        "--json", action="store_true",
        help="print the phase attribution as JSON instead of the table",
    )

    top = sub.add_parser(
        "top",
        help="live dashboard of one running experiment (sparklines + "
        "health + ETA)",
    )
    add_run_args(top)
    top.add_argument(
        "--window", type=int, default=100, metavar="CYCLES",
        help="timeline sampling window in cycles (default: %(default)s)",
    )
    top.add_argument(
        "--refresh", type=int, default=5, metavar="WINDOWS",
        help="redraw every this many windows (default: %(default)s)",
    )
    top.add_argument(
        "--rows", type=int, default=12,
        help="maximum sparkline rows to show (default: %(default)s)",
    )
    top.add_argument(
        "--paths", default=None,
        help="comma-separated registry path patterns to sample "
        "(default: the standard timeline path set)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="run to completion and print one final frame (no ANSI "
        "redraws; for CI and non-interactive use)",
    )
    top.add_argument(
        "--from", dest="from_timeline", default=None,
        metavar="TIMELINE.JSONL",
        help="render an archived timeline instead of running an "
        "experiment (implies --once)",
    )
    top.add_argument(
        "--out", default=None, metavar="TIMELINE.JSONL",
        help="also write the collected timeline archive on exit",
    )

    faults = sub.add_parser(
        "faults", help="run one fault-injected FSOI experiment"
    )
    faults.add_argument("--app", default="oc", choices=sorted(APPLICATIONS))
    faults.add_argument("--nodes", type=int, default=16)
    faults.add_argument("--cycles", type=int, default=10_000)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--optimized", action="store_true",
        help="enable all §5 optimizations",
    )
    faults.add_argument(
        "--plan", default=None, metavar="PLAN.JSON",
        help="load the FaultPlan from a JSON file (overrides fault flags)",
    )
    faults.add_argument(
        "--kill", action="append", default=[],
        metavar="NODE:LANE[:START[:END]]",
        help="kill a node's transmit lane (lane meta|data; omit END for "
        "a permanent fault); repeatable",
    )
    faults.add_argument(
        "--kill-receiver", action="append", default=[],
        metavar="NODE:LANE:RX[:START[:END]]",
        help="kill one of a node's receivers; traffic is spared onto "
        "the next healthy receiver; repeatable",
    )
    faults.add_argument(
        "--droop", action="append", default=[],
        metavar="DB[:START[:END]]",
        help="thermal VCSEL power droop in dB, mapped to BER through "
        "the optical chain; repeatable",
    )
    faults.add_argument(
        "--droop-node", type=int, default=None,
        help="restrict --droop to one transmitting node (default: all)",
    )
    faults.add_argument(
        "--burst", action="append", default=[],
        metavar="RATE[:START[:END]]",
        help="bit-error burst: per-packet corruption probability over a "
        "window; repeatable",
    )
    faults.add_argument(
        "--drop-confirmations", type=float, default=0.0, metavar="RATE",
        help="drop this fraction of confirmation pulses",
    )
    faults.add_argument(
        "--giveup", type=int, default=None, metavar="RETRIES",
        help="senders abandon a packet after this many retries "
        "(default: retry forever)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the injector's private RNG streams",
    )
    faults.add_argument(
        "--metrics", default=None, metavar="METRICS.{JSON,CSV}",
        help="export the run's metrics-registry snapshot",
    )
    faults.add_argument(
        "--save-plan", default=None, metavar="PLAN.JSON",
        help="write the assembled FaultPlan as JSON and continue",
    )
    faults.add_argument(
        "--health", action="store_true",
        help="run the invariant/anomaly watchdogs after the run and "
        "print the health report (injected faults should trip them)",
    )
    faults.add_argument(
        "--strict-health", action="store_true",
        help="like --health, but exit non-zero if any watchdog fires",
    )

    thermal = sub.add_parser("thermal", help="§3.3 cooling-option survey")
    thermal.add_argument("--power", type=float, default=121.0)

    return parser


def _cmd_link() -> int:
    link = OpticalLink()
    print("Table 1 — optical link parameters")
    for key, value in link.table1().items():
        print(f"  {key:<28} {value:g}")
    print("loss budget (dB):")
    for key, value in link.path.loss_budget().items():
        print(f"  {key:<28} {value:.3f}")
    return 0


def _cmd_config(args) -> int:
    print(table3(args.nodes).render())
    return 0


def _cmd_run(args) -> int:
    optimizations = (
        OptimizationConfig.all() if args.optimized else OptimizationConfig.none()
    )
    config = CmpConfig(
        num_nodes=args.nodes,
        app=args.app,
        network=args.network,
        optimizations=optimizations,
        seed=args.seed,
    )
    system = CmpSystem(config)
    want_timeline = bool(args.timeline or args.openmetrics)
    want_health = args.health or args.strict_health
    timeline = None
    if want_timeline or want_health:
        # Health's starvation/backoff detectors read the windowed
        # series, so --health collects a timeline even when none is
        # exported.  Collection is non-perturbing (docs/observability.md)
        # — the results below match a plain `repro run` bit for bit.
        from repro.obs import timelining

        with timelining(window=args.timeline_window) as timeline:
            result = system.run(args.cycles)
    else:
        result = system.run(args.cycles)
    print(f"{args.app} on {args.network}, {args.nodes} nodes, "
          f"{args.cycles} cycles:")
    print(f"  instructions  {result.instructions:,}  (IPC {result.ipc:.3f})")
    print(f"  packets       {result.packets_delivered:,} delivered")
    breakdown = result.latency_breakdown
    print("  latency       "
          f"total {breakdown['total']:.2f} = "
          f"queuing {breakdown['queuing']:.2f} + "
          f"scheduling {breakdown['scheduling']:.2f} + "
          f"network {breakdown['network']:.2f} + "
          f"collisions {breakdown['collision_resolution']:.2f}")
    if result.fsoi:
        print(f"  meta lane     p={result.fsoi['meta_tx_probability']:.4f}, "
              f"collisions {100 * result.fsoi['meta_collision_rate']:.2f}%")
        print(f"  data lane     p={result.fsoi['data_tx_probability']:.4f}, "
              f"collisions {100 * result.fsoi['data_collision_rate']:.2f}%")
    if args.timeline:
        windows = timeline.write_jsonl(args.timeline)
        print(f"  timeline      {windows} windows of {args.timeline_window} "
              f"cycles -> {args.timeline}")
    if args.openmetrics:
        samples = timeline.write_openmetrics(args.openmetrics)
        print(f"  openmetrics   {samples} samples -> {args.openmetrics}")
    if want_health:
        from repro.obs import check_health, render_health

        events = check_health(system=system, timeline=timeline)
        result.health = [event.to_dict() for event in events]
        for line in render_health(events).splitlines():
            print(f"  {line}")
        if args.strict_health and events:
            print(f"repro run: --strict-health: {len(events)} health "
                  "event(s) — failing")
            return 1
    return 0


def _cmd_compare(args) -> int:
    runs = {}
    for network in ("mesh", "fsoi"):
        config = CmpConfig(
            num_nodes=args.nodes, app=args.app, network=network, seed=args.seed
        )
        runs[network] = CmpSystem(config).run(args.cycles)
    model = SystemPowerModel()
    reports = {name: model.report(run) for name, run in runs.items()}
    speedup = runs["fsoi"].speedup_over(runs["mesh"])
    relative = reports["fsoi"].relative_to(reports["mesh"])
    print(f"{args.app}, {args.nodes} nodes, {args.cycles} cycles:")
    print(f"  mesh latency  {runs['mesh'].latency_breakdown['total']:.1f} cycles, "
          f"FSOI {runs['fsoi'].latency_breakdown['total']:.1f}")
    print(f"  speedup       {speedup:.3f}x")
    print(f"  energy        {relative['total']:.3f} of mesh "
          f"(network {relative['network']:.3f})")
    print(f"  power         {reports['mesh'].average_power:.0f} W -> "
          f"{reports['fsoi'].average_power:.0f} W")
    edp = (
        reports["mesh"].energy_delay_product()
        / reports["fsoi"].energy_delay_product()
    )
    print(f"  EDP           {edp:.2f}x better")
    return 0


def _csv(value: str) -> list[str]:
    return [part for part in value.split(",") if part]


def _cmd_sweep(args) -> int:
    import json

    from repro.sweep import SweepSpec, run_sweep

    if args.spec:
        with open(args.spec) as handle:
            spec = SweepSpec.from_dict(json.load(handle))
    else:
        optimizations = ("none", "all") if args.optimized else ("none",)
        spec = SweepSpec(
            apps=tuple(_csv(args.apps)),
            networks=tuple(_csv(args.networks)),
            nodes=tuple(int(n) for n in _csv(args.nodes)),
            seeds=tuple(int(s) for s in _csv(args.seeds)),
            cycles=args.cycles,
            optimizations=optimizations,
        )
    from repro.analytics import SweepTelemetry

    points = spec.points()
    print(f"sweep: {len(points)} points, {args.workers} worker(s), "
          f"cache {'off' if args.no_cache else args.cache_dir}")
    telemetry = SweepTelemetry(
        total=len(points), workers=args.workers, live=args.live
    )

    def progress(done, total, outcome):
        telemetry.on_progress(done, total, outcome)
        if not args.live:
            tag = "cache" if outcome.cached else outcome.status
            print(f"  [{done:>{len(str(total))}}/{total}] "
                  f"{outcome.point.label():<28} {tag:<7} "
                  f"(cache {telemetry.from_cache}, "
                  f"failed {telemetry.failed})")

    report = run_sweep(
        spec,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        timeout=args.timeout,
        jsonl_path=args.out,
        metrics_path=args.metrics_dir,
        timeline_path=args.timeline_dir,
        timeline_window=args.timeline_window,
        progress=progress,
        heartbeat=telemetry.on_heartbeat if args.live else None,
    )
    telemetry.close()

    skip = ""
    if report.skipped_cycles:
        skip = (f", fast-forwarded {report.skipped_cycles:,} of "
                f"{report.skipped_cycles + report.executed_cycles:,} cycles "
                f"({100 * report.skip_ratio:.0f}%)")
    print(f"done in {report.wall_seconds:.1f}s: {report.executed} executed, "
          f"{report.from_cache} from cache, {report.failed} failed{skip}")
    if report.ok:
        header = f"  {'point':<28} {'IPC':>8} {'latency':>8}"
        print(header)
        for point, result in report.results():
            print(f"  {point.label():<28} {result.ipc:>8.3f} "
                  f"{result.latency_breakdown['total']:>8.2f}")
    networks = {point.network for point in points}
    if args.baseline in networks:
        for network in sorted(networks - {args.baseline}):
            try:
                summary = report.paired_speedups(network, args.baseline)
            except ValueError:
                continue
            print(f"  speedup {network} vs {args.baseline}: {summary}")
    for outcome in report.outcomes:
        if not outcome.ok:
            print(f"  FAILED {outcome.point.label()}: {outcome.error}")
    if report.jsonl_path:
        print(f"  results: {report.jsonl_path}")
    if args.timeline_dir:
        print(f"  timelines: {args.timeline_dir} "
              f"(window {args.timeline_window} cycles)")
    return 1 if report.failed else 0


def _report_rows(records) -> "list":
    """ResultRow list from (label, status, cached, result, error) tuples."""
    from repro.analytics import ResultRow

    rows = []
    for label, status, cached, result, error in records:
        ipc = latency = None
        if result is not None:
            cycles = result.get("cycles", 0)
            ipc = result["instructions"] / cycles if cycles else 0.0
            latency = result["latency_breakdown"]["total"]
        rows.append(ResultRow(
            label=label, status=status, cached=cached,
            ipc=ipc, latency=latency, error=error,
        ))
    return rows


def _cmd_report(args) -> int:
    import math

    from repro.analytics import (
        ReportBundle,
        RunStore,
        SweepTelemetry,
        validate,
    )
    from repro.analytics.validation import RunContext
    from repro.sweep import SweepPoint, SweepSpec, load_jsonl, run_sweep

    sweep_report = None
    if args.from_jsonl:
        records = load_jsonl(args.from_jsonl, strict=False)
        rows = _report_rows(
            (
                SweepPoint.from_dict(rec["point"]).label(),
                rec["status"],
                False,
                rec.get("result"),
                rec.get("error"),
            )
            for rec in records
        )
        context = RunContext(tuple(
            (rec["point"], rec["result"]) for rec in records
            if rec.get("status") == "ok" and rec.get("result") is not None
        ))
        title = f"repro report — {args.from_jsonl}"
        wall = 0.0
    else:
        spec = SweepSpec(
            apps=tuple(_csv(args.apps)),
            networks=tuple(_csv(args.networks)),
            nodes=tuple(int(n) for n in _csv(args.nodes)),
            seeds=tuple(int(s) for s in _csv(args.seeds)),
            cycles=args.cycles,
        )
        points = spec.points()
        print(f"report: sweeping {len(points)} points, "
              f"{args.workers} worker(s)")
        telemetry = SweepTelemetry(
            total=len(points), workers=args.workers, live=args.live
        )
        sweep_report = run_sweep(
            spec,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            metrics_path=args.metrics_dir,
            timeline_path=args.timeline_dir,
            progress=telemetry.on_progress,
            heartbeat=telemetry.on_heartbeat if args.live else None,
        )
        telemetry.close()
        rows = _report_rows(
            (
                outcome.point.label(),
                outcome.status,
                outcome.cached,
                outcome.result,
                outcome.error,
            )
            for outcome in sweep_report.outcomes
        )
        context = RunContext.from_outcomes(sweep_report.outcomes)
        title = (
            f"repro report — {args.apps} on {args.networks}, "
            f"{args.nodes} nodes, {args.cycles} cycles"
        )
        wall = sweep_report.wall_seconds

    run_info = diff = None
    if args.ledger:
        with RunStore(args.ledger) as store:
            if sweep_report is not None:
                run_info = store.ingest_report(
                    sweep_report, label=args.label,
                    metrics_dir=args.metrics_dir,
                    timeline_dir=args.timeline_dir,
                )
            else:
                run_info = store.ingest_jsonl(
                    args.from_jsonl, label=args.label,
                    metrics_dir=args.metrics_dir,
                    timeline_dir=args.timeline_dir,
                )
            if args.diff:
                older = [
                    run for run in store.runs()
                    if run.run_id != run_info.run_id
                ]
                if older:
                    diff = store.diff(older[0].run_id, run_info.run_id)
                else:
                    print("report: --diff requested but the ledger holds "
                          "no other run")

    speedups = {}
    for nodes in sorted({p["num_nodes"] for p, _ in context.pairs}):
        ratios = context.paired_speedups(nodes=nodes)
        if ratios:
            gmean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
            speedups[f"{nodes} nodes"] = gmean

    bundle = ReportBundle(
        title=title,
        rows=rows,
        validation=validate(context),
        run_info=run_info,
        diff=diff,
        speedups=speedups,
        wall_seconds=wall,
    )
    print(bundle.to_terminal())
    if args.out:
        bundle.write(args.out)
        print(f"report written to {args.out}")
    failed_points = sum(1 for row in rows if row.status != "ok")
    return 1 if (not bundle.validation.ok or failed_points) else 0


def _cmd_bench(args) -> int:
    from repro.analytics import (
        compare_snapshots,
        load_snapshot,
        previous_snapshot,
        run_bench,
    )
    from repro.analytics.bench import MACRO_CYCLES, MICRO_CYCLES

    if args.snapshot:
        current = load_snapshot(args.snapshot)
        print(f"bench: loaded snapshot {args.snapshot} (sha {current.sha})")
    else:
        micro = args.micro_cycles or MICRO_CYCLES
        macro = args.macro_cycles or MACRO_CYCLES
        print(f"bench: running pinned suite (micro {micro} cycles, "
              f"macro {macro} cycles, {args.workers} worker(s))")
        current = run_bench(
            micro_cycles=micro, macro_cycles=macro, workers=args.workers
        )
        for metric, value in sorted(current.metrics.items()):
            print(f"  {metric:<38} {value:>12.4g}")
        if not args.no_write:
            path = current.write(args.root)
            print(f"  snapshot -> {path}")

    if not args.compare:
        return 0
    if args.against:
        previous = load_snapshot(args.against)
    else:
        previous = previous_snapshot(args.root, exclude_sha=current.sha)
    if previous is None:
        print("bench: no previous snapshot to compare against")
        return 0
    comparison = compare_snapshots(
        current, previous, threshold=args.threshold
    )
    print(comparison.render())
    return 0 if comparison.ok else 1


def _traced_config(args) -> "CmpConfig":
    optimizations = (
        OptimizationConfig.all() if args.optimized else OptimizationConfig.none()
    )
    return CmpConfig(
        num_nodes=args.nodes,
        app=args.app,
        network=args.network,
        optimizations=optimizations,
        seed=args.seed,
    )


def _trace_summary(tracer) -> str:
    """Per-category / per-name breakdown of the retained events."""
    from collections import Counter

    names: dict[str, Counter] = {}
    lo = hi = None
    for event in tracer.events():
        names.setdefault(event.cat, Counter())[event.name] += 1
        lo = event.cycle if lo is None else min(lo, event.cycle)
        hi = event.cycle if hi is None else max(hi, event.cycle)
    lines = ["trace summary:"]
    if lo is None:
        lines.append("  (no events retained)")
        return "\n".join(lines)
    lines.append(f"  {len(tracer):,} events over cycles {lo:,}..{hi:,} "
                 f"({tracer.emitted:,} emitted, {tracer.dropped:,} dropped)")
    for cat in sorted(names):
        counter = names[cat]
        total = sum(counter.values())
        detail = ", ".join(
            f"{name} {count:,}" for name, count in counter.most_common(4)
        )
        if len(counter) > 4:
            detail += f", +{len(counter) - 4} more"
        lines.append(f"  {cat:<14} {total:>10,}  ({detail})")
    return "\n".join(lines)


def _cmd_trace(args) -> int:
    from contextlib import nullcontext

    from repro.obs import timelining, tracing

    categories = _csv(args.categories) if args.categories else None
    timeline_ctx = (
        timelining(window=args.timeline_window) if args.timeline
        else nullcontext(None)
    )
    with tracing(capacity=args.buffer, categories=categories) as tracer, \
            timeline_ctx as timeline:
        system = CmpSystem(_traced_config(args))
        result = system.run(args.cycles)
    filters = {}
    if args.node is not None:
        filters["node"] = args.node
    if args.lane is not None:
        filters["lane"] = args.lane
    counters = timeline.counter_events() if timeline is not None else None
    written = tracer.write_jsonl(args.out, extra=counters, **filters)
    print(f"{args.app} on {args.network}, {args.nodes} nodes, "
          f"{args.cycles} cycles: {result.packets_delivered:,} packets")
    print(f"  trace         {written:,} events -> {args.out} "
          f"({tracer.emitted:,} emitted, {tracer.dropped:,} dropped)")
    for cat, count in tracer.category_counts().items():
        print(f"    {cat:<12} {count:,}")
    if counters is not None:
        print(f"    timeline     {len(counters):,} counter events merged "
              f"(window {args.timeline_window} cycles)")
    if args.chrome:
        tracer.write_chrome_json(args.chrome, extra=counters, **filters)
        print(f"  chrome trace  {args.chrome} (load in chrome://tracing)")
    if args.metrics:
        system.metrics_registry().write(args.metrics)
        print(f"  metrics       {args.metrics}")
    if args.summary:
        for line in _trace_summary(tracer).splitlines():
            print(f"  {line}")
    if tracer.dropped:
        print(f"  warning: ring buffer overflowed — {tracer.dropped:,} of "
              f"{tracer.emitted:,} events dropped; the exported trace is a "
              f"truncated suffix (raise --buffer past {tracer.emitted:,} "
              "or narrow --categories)")
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.obs import profiling

    with profiling() as profiler:
        result = CmpSystem(_traced_config(args)).run(args.cycles)
    if args.json:
        print(json.dumps(
            {
                "app": args.app,
                "network": args.network,
                "num_nodes": args.nodes,
                "cycles": args.cycles,
                "seed": args.seed,
                "ipc": round(result.ipc, 6),
                "packets_delivered": result.packets_delivered,
                "wall_seconds": profiler.wall_seconds,
                "attributed_seconds": profiler.attributed_seconds,
                "total_cycles": profiler.total_cycles,
                "phases": profiler.report(),
            },
            indent=1,
            sort_keys=True,
        ))
        return 0
    print(f"{args.app} on {args.network}, {args.nodes} nodes, "
          f"{args.cycles} cycles: IPC {result.ipc:.3f}, "
          f"{result.packets_delivered:,} packets")
    print(profiler.render())
    return 0


def _window(parts: list[str], what: str) -> tuple[int, "int | None"]:
    """Parse the optional ``[:START[:END]]`` tail of a fault flag."""
    try:
        start = int(parts[0]) if len(parts) > 0 and parts[0] else 0
        end = int(parts[1]) if len(parts) > 1 and parts[1] else None
    except ValueError as exc:
        raise SystemExit(f"repro faults: bad {what} window: {exc}")
    return start, end


def _faults_plan(args) -> "FaultPlan":
    import json

    from repro.faults import (
        ConfirmationDrop,
        ErrorBurst,
        FaultPlan,
        LaneFault,
        ReceiverFault,
        ThermalDroop,
    )

    if args.plan:
        with open(args.plan) as handle:
            return FaultPlan.from_dict(json.load(handle))

    lane_faults = []
    for spec in args.kill:
        parts = spec.split(":")
        if len(parts) < 2:
            raise SystemExit(f"repro faults: --kill wants NODE:LANE, got {spec!r}")
        start, end = _window(parts[2:], "--kill")
        lane_faults.append(
            LaneFault(node=int(parts[0]), lane=parts[1], start=start, end=end)
        )
    receiver_faults = []
    for spec in args.kill_receiver:
        parts = spec.split(":")
        if len(parts) < 3:
            raise SystemExit(
                f"repro faults: --kill-receiver wants NODE:LANE:RX, got {spec!r}"
            )
        start, end = _window(parts[3:], "--kill-receiver")
        receiver_faults.append(
            ReceiverFault(
                node=int(parts[0]), lane=parts[1], receiver=int(parts[2]),
                start=start, end=end,
            )
        )
    droops = []
    for spec in args.droop:
        parts = spec.split(":")
        start, end = _window(parts[1:], "--droop")
        droops.append(
            ThermalDroop(
                droop_db=float(parts[0]), node=args.droop_node,
                start=start, end=end,
            )
        )
    bursts = []
    for spec in args.burst:
        parts = spec.split(":")
        start, end = _window(parts[1:], "--burst")
        bursts.append(ErrorBurst(rate=float(parts[0]), start=start, end=end))
    drops = []
    if args.drop_confirmations > 0.0:
        drops.append(ConfirmationDrop(rate=args.drop_confirmations))
    try:
        return FaultPlan(
            label="cli",
            lane_faults=tuple(lane_faults),
            receiver_faults=tuple(receiver_faults),
            droops=tuple(droops),
            bursts=tuple(bursts),
            confirmation_drops=tuple(drops),
            giveup_retries=args.giveup,
            seed=args.fault_seed,
        )
    except ValueError as exc:
        raise SystemExit(f"repro faults: {exc}")


def _cmd_faults(args) -> int:
    import json

    plan = _faults_plan(args)
    if plan.is_empty():
        raise SystemExit(
            "repro faults: empty plan — give at least one of --plan, --kill, "
            "--kill-receiver, --droop, --burst, --drop-confirmations, --giveup"
        )
    if args.save_plan:
        with open(args.save_plan, "w") as handle:
            json.dump(plan.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"plan saved to {args.save_plan}")

    optimizations = (
        OptimizationConfig.all() if args.optimized else OptimizationConfig.none()
    )
    config = CmpConfig(
        num_nodes=args.nodes,
        app=args.app,
        network="fsoi",
        optimizations=optimizations,
        faults=plan,
        seed=args.seed,
    )
    system = CmpSystem(config)
    want_health = args.health or args.strict_health
    timeline = None
    if want_health:
        from repro.obs import timelining

        with timelining() as timeline:
            result = system.run(args.cycles)
    else:
        result = system.run(args.cycles)

    print(f"{args.app} on fsoi, {args.nodes} nodes, {args.cycles} cycles, "
          f"plan {plan.content_hash()}:")
    for line in plan.describe().splitlines():
        print(f"  {line}")
    print(f"  instructions  {result.instructions:,}  (IPC {result.ipc:.3f})")
    print(f"  packets       {result.packets_delivered:,} delivered")
    summary = result.fsoi.get("faults", {})
    print("  resilience    "
          f"suppressed {summary.get('meta', {}).get('suppressed', 0) + summary.get('data', {}).get('suppressed', 0):,}, "
          f"lane-down events {summary.get('lane_down_events', 0):,}, "
          f"remaps {summary.get('receiver_remaps', 0):,}")
    print("                "
          f"injected corrupt {summary.get('meta', {}).get('injected_corrupt', 0) + summary.get('data', {}).get('injected_corrupt', 0):,}, "
          f"confirmations dropped {summary.get('confirmations_dropped', 0):,}, "
          f"duplicates {summary.get('meta', {}).get('duplicate_rx', 0) + summary.get('data', {}).get('duplicate_rx', 0):,}")
    print("                "
          f"gave up {summary.get('gave_up_lost', 0):,} lost "
          f"+ {summary.get('gave_up_delivered', 0):,} already-delivered")
    if args.metrics:
        system.metrics_registry().write(args.metrics)
        print(f"  metrics       {args.metrics}")
    if want_health:
        from repro.obs import check_health, render_health

        events = check_health(system=system, timeline=timeline)
        result.health = [event.to_dict() for event in events]
        for line in render_health(events).splitlines():
            print(f"  {line}")
        if args.strict_health and events:
            print(f"repro faults: --strict-health: {len(events)} health "
                  "event(s) — failing")
            return 1
    return 0


def _timeline_view(timeline) -> tuple[dict, list, dict]:
    """``(meta, cycles, columns)`` from a live collector or archive dict.

    Accepts both a :class:`repro.obs.TimelineCollector` and the
    ``load_timeline_jsonl`` shape, so one renderer serves the live and
    ``--from`` paths of ``repro top``.
    """
    if isinstance(timeline, dict):
        meta = dict(timeline["meta"])
        cycles = [int(c) for c in timeline["cycles"]]
        rows = timeline["deltas"]
    else:
        meta = timeline.meta_record()
        cycles = [int(c) for c in timeline.cycles()]
        rows = timeline.matrix()
    paths = list(meta.get("paths", ()))
    columns = {
        path: [float(row[i]) for row in rows]
        for i, path in enumerate(paths)
    }
    return meta, cycles, columns


def _render_top_frame(
    timeline,
    events,
    *,
    target_cycles: "int | None" = None,
    elapsed: "float | None" = None,
    rows: int = 12,
    width: int = 32,
) -> str:
    """One ``repro top`` dashboard frame (no trailing newline)."""
    from repro.analytics import format_eta
    from repro.util.charts import sparkline

    meta, cycles, columns = _timeline_view(timeline)
    current = cycles[-1] if cycles else 0
    header = (
        f"repro top — {meta.get('app', '?')} on {meta.get('network', '?')}, "
        f"{meta.get('num_nodes', '?')} nodes, seed {meta.get('seed', '?')} · "
        f"window {meta.get('window', '?')}"
    )
    if target_cycles:
        header += (f" · cycle {current:,}/{target_cycles:,} "
                   f"({100 * current / target_cycles:.0f}%)")
        if elapsed is not None and 0 < current < target_cycles:
            eta = elapsed * (target_cycles - current) / current
            header += f" · eta {format_eta(eta)}"
    health = "OK" if not events else f"{len(events)} event(s)"
    header += f" · health {health}"
    lines = [header]
    if not cycles:
        lines.append("  (no windows sampled yet)")
        return "\n".join(lines)
    totals = {path: sum(values) for path, values in columns.items()}
    # Busiest paths first for the cut, then back to path order so rows
    # don't jump around between frames.
    busiest = set(sorted(columns, key=lambda p: -abs(totals[p]))[:rows])
    shown = [path for path in columns if path in busiest]
    label_width = max((len(path) for path in shown), default=4)
    lines.append(
        f"  {'path':<{label_width}} {'last':>12} {'total':>14}  "
        f"per-window deltas"
    )
    for path in shown:
        values = columns[path]
        lines.append(
            f"  {path:<{label_width}} {values[-1]:>12,.6g} "
            f"{totals[path]:>14,.6g}  {sparkline(values, width=width)}"
        )
    hidden = len(columns) - len(shown)
    if hidden > 0:
        lines.append(f"  (+{hidden} more paths; raise --rows)")
    if meta.get("dropped_windows"):
        lines.append(
            f"  note: {meta['dropped_windows']:,} oldest windows dropped "
            "from the ring (totals above stay exact)"
        )
    if events:
        lines.append("health events:")
        for event in events[-4:]:
            lines.append(
                f"  [{event.severity}] {event.detector} @ cycle "
                f"{event.cycle:,}: {event.message}"
            )
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time

    from repro.obs import check_health, timelining
    from repro.obs.timeline import load_timeline_jsonl

    if args.from_timeline:
        timeline = load_timeline_jsonl(args.from_timeline)
        events = check_health(timeline=timeline)
        print(_render_top_frame(timeline, events, rows=args.rows))
        return 0

    system = CmpSystem(_traced_config(args))
    paths = _csv(args.paths) if args.paths else None
    # Slices stay window-aligned, so the sampled cycles (and any --out
    # archive) are byte-identical to a single uninterrupted run.
    chunk = args.window * max(1, args.refresh)
    started = time.perf_counter()
    events: list = []
    with timelining(window=args.window, paths=paths) as timeline:
        try:
            while system.cycle < args.cycles:
                system.run(min(chunk, args.cycles - system.cycle))
                events = check_health(system=system, timeline=timeline)
                if not args.once:
                    frame = _render_top_frame(
                        timeline, events,
                        target_cycles=args.cycles,
                        elapsed=time.perf_counter() - started,
                        rows=args.rows,
                    )
                    sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
                    sys.stdout.flush()
        except KeyboardInterrupt:
            print()
    if args.once:
        print(_render_top_frame(
            timeline, events,
            target_cycles=args.cycles,
            elapsed=time.perf_counter() - started,
            rows=args.rows,
        ))
    if args.out:
        windows = timeline.write_jsonl(args.out)
        print(f"timeline: {windows} windows -> {args.out}")
    return 0


def _cmd_thermal(args) -> int:
    stack = ThermalStack()
    print(f"cooling survey at {args.power:.0f} W chip power:")
    for option, report in stack.survey(args.power).items():
        verdict = "OK" if report.feasible else "EXCEEDS LIMITS"
        print(f"  {option.value:<17} CMOS {report.cmos_junction:6.1f} C  "
              f"VCSEL {report.vcsel_layer:6.1f} C  {verdict}")
    for option in CoolingOption:
        print(f"  {option.value:<17} sustains up to "
              f"{stack.max_power(option):.0f} W")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "link":
            return _cmd_link()
        if args.command == "config":
            return _cmd_config(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "thermal":
            return _cmd_thermal(args)
    except BrokenPipeError:  # pragma: no cover - e.g. `repro link | head`
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
