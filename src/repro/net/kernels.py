"""Shared columnar kernels for the vectorized network engines.

The mesh and FSOI vector engines (``repro.mesh.vector``,
``repro.core.vector``) keep per-entity readiness horizons in numpy
arrays and derive their per-cycle worklists and fast-forward horizons
from bulk operations over them.  The operations live here as pure
functions so the property suite (``tests/net/test_network_kernels.py``)
can check each one against a scalar re-derivation in isolation — a
regression points at the broken primitive instead of a diverged
end-to-end run, mirroring ``repro.cpu.vector``'s kernel split.

Conventions: readiness arrays hold the earliest cycle an entity can act,
with :data:`NEVER` as the "no pending work" sentinel; all cycle values
are int64.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NEVER",
    "allocatable_vc_mask",
    "due_indices",
    "earliest",
    "rr_pick",
    "slot_horizon",
    "xy_route_codes",
]

#: "No pending work" sentinel for readiness arrays.  Large enough that
#: no simulated cycle ever reaches it, small enough that int64 boundary
#: arithmetic on it cannot overflow.
NEVER = 1 << 62


def due_indices(ready: np.ndarray, cycle: int) -> np.ndarray:
    """Ascending indices of entries ready at or before ``cycle``.

    The ascending order is load-bearing: both engines' scalar reference
    loops visit entities in index order, and the worklist must replay
    that order exactly.
    """
    return np.nonzero(ready <= cycle)[0]


def earliest(ready: np.ndarray) -> int:
    """Minimum readiness horizon, or :data:`NEVER` for an empty array."""
    if ready.size == 0:
        return NEVER
    return int(ready.min())


def slot_horizon(earliest_ready: int, cycle: int, slot_len: int) -> int | None:
    """First slot boundary at which a pending transmission can start.

    Slotted ALOHA quantizes transmission starts: a packet eligible at
    ``earliest_ready`` (clamped to ``cycle`` — an overdue packet starts
    at the *next* boundary, not a past one) goes out at the first
    multiple of ``slot_len`` at or after that.  ``None`` when nothing is
    pending (``earliest_ready`` at or past :data:`NEVER`).
    """
    if earliest_ready >= NEVER:
        return None
    eligible = earliest_ready if earliest_ready > cycle else cycle
    return ((eligible + slot_len - 1) // slot_len) * slot_len


def allocatable_vc_mask(
    owner_busy: np.ndarray, occupancy: np.ndarray, capacity: int
) -> np.ndarray:
    """Per-node mask: some VC is both unallocated and has a credit.

    ``owner_busy``/``occupancy`` are ``(nodes, vcs)`` slices of the mesh
    engine's columns (usually the LOCAL input port).  A fresh head flit
    needs a VC that is free (packet-granularity allocation) *and* has a
    buffer slot (credit), exactly
    :meth:`repro.mesh.network.MeshNetwork._allocate_injection_vc`.
    """
    return np.logical_and(~owner_busy, occupancy < capacity).any(axis=-1)


def xy_route_codes(nodes: np.ndarray, dsts: np.ndarray, side: int) -> np.ndarray:
    """Vectorized XY route computation (X fully, then Y).

    Returns :class:`repro.mesh.routing.Port` values as an int array;
    element-wise identical to :func:`repro.mesh.routing.xy_route`.  Used
    by the mesh engine's audit to cross-check every buffered packet's
    route column in one shot.
    """
    from repro.mesh.routing import Port

    x = nodes % side
    y = nodes // side
    dx = dsts % side
    dy = dsts // side
    codes = np.full(nodes.shape, Port.LOCAL.value, dtype=np.int64)
    codes[dy > y] = Port.SOUTH.value
    codes[dy < y] = Port.NORTH.value
    # X routing takes priority over Y (dimension order), so it is
    # written last and overwrites any Y decision where dx differs.
    codes[dx > x] = Port.EAST.value
    codes[dx < x] = Port.WEST.value
    return codes


def rr_pick(indices, start: int) -> int:
    """Round-robin arbitration: position of the winning requester.

    ``indices`` are the requesters' arbitration indices (distinct,
    ``in_port * num_vcs + vc + 1``); the winner minimizes the cyclic
    distance from the arbiter pointer ``start``.  Equivalent to the
    reference router's ``sorted(..., key=(index - start) % 1000)[0]``
    (the modulus only has to exceed the largest index) but O(n).
    """
    best = 0
    best_key = (indices[0] - start) % 1000
    for pos in range(1, len(indices)):
        key = (indices[pos] - start) % 1000
        if key < best_key:
            best = pos
            best_key = key
    return best
