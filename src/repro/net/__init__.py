"""Shared interconnect abstractions.

Every network model in the reproduction — the FSOI contribution
(:mod:`repro.core`), the electrical mesh baseline (:mod:`repro.mesh`),
the idealized L0/Lr1/Lr2 references (:mod:`repro.mesh.ideal`) and the
corona-style shared-medium comparison (:mod:`repro.corona`) — implements
the same small interface defined here, so the CMP simulator
(:mod:`repro.cmp`) can swap interconnects without caring which one it is
driving.

Packets come in the paper's two sizes (Table 3): **meta** packets
(72 bits / 1 flit: requests, acknowledgements, control) and **data**
packets (360 bits / 5 flits: cache-line transfers).
"""

from repro.net.interface import DeliveryCallback, Interconnect, InterconnectStats
from repro.net.packet import (
    DATA_PACKET_BITS,
    FLIT_BITS,
    META_PACKET_BITS,
    LaneKind,
    Packet,
)

__all__ = [
    "DeliveryCallback",
    "Interconnect",
    "InterconnectStats",
    "Packet",
    "LaneKind",
    "FLIT_BITS",
    "META_PACKET_BITS",
    "DATA_PACKET_BITS",
]
