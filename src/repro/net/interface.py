"""The interconnect interface every network model implements.

The CMP simulator drives a network exclusively through this interface:

* :meth:`Interconnect.try_send` — offer a packet; the network may refuse
  (finite source queues), in which case the caller stalls and retries.
* a delivery callback per node, invoked when a packet arrives.
* :meth:`Interconnect.tick` — advance one processor cycle.

All networks stamp the packet timing fields and record the common
:class:`InterconnectStats`, so the latency-breakdown and collision
figures are produced identically regardless of the model.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.net.packet import LaneKind, Packet
from repro.util.stats import StatGroup

__all__ = ["DeliveryCallback", "InterconnectStats", "Interconnect"]

DeliveryCallback = Callable[[Packet], None]


class InterconnectStats:
    """Common statistics every network records.

    Latency components are recorded per delivered packet, split by lane,
    matching the breakdown of Figures 6(a)/7(a).
    """

    def __init__(self) -> None:
        self.group = StatGroup("interconnect")
        self.sent = self.group.counter("packets_sent")
        self.delivered = self.group.counter("packets_delivered")
        self.refused = self.group.counter("send_refused")
        self.bits_sent = self.group.counter("bits_sent")
        self.queuing = self.group.latency("queuing_delay")
        self.scheduling = self.group.latency("scheduling_delay")
        self.network = self.group.latency("network_delay")
        self.resolution = self.group.latency("resolution_delay")
        self.total = self.group.latency("total_delay")

    def record_delivery(self, packet: Packet) -> None:
        # The component arithmetic is inlined (rather than read through
        # the Packet delay properties) — this runs once per delivered
        # packet on the network phase's hot path.
        enqueue = packet.enqueue_cycle
        scheduled = packet.scheduled_cycle
        first = packet.first_tx_cycle
        final = packet.final_tx_cycle
        deliver = packet.deliver_cycle
        self.delivered.value += 1
        self.queuing.record(first - scheduled)
        self.scheduling.record(scheduled - enqueue)
        self.resolution.record(final - first)
        self.network.record(deliver - final)
        self.total.record(deliver - enqueue)

    def breakdown(self) -> dict[str, float]:
        """Mean per-packet latency split into the paper's four components."""
        return {
            "queuing": self.queuing.mean,
            "scheduling": self.scheduling.mean,
            "network": self.network.mean,
            "collision_resolution": self.resolution.mean,
            "total": self.total.mean,
        }


class Interconnect(abc.ABC):
    """Abstract base class for all network models."""

    def __init__(self, num_nodes: int):
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes: {num_nodes}")
        self.num_nodes = num_nodes
        self.stats = InterconnectStats()
        self._callbacks: list[Optional[DeliveryCallback]] = [None] * num_nodes
        self._traffic: dict[tuple[int, int], int] = {}
        #: Per-cycle mailbox drain hook (repro.coherence.vector): when
        #: set, every ``tick`` implementation invokes it after its
        #: delivery phase and *before* any same-cycle transmit work
        #: (slot starts, injections, token advances), so handler sends
        #: triggered by this cycle's deliveries still land in the same
        #: cycle's queues exactly as inline dispatch would.
        self.post_delivery: Optional[Callable[[], None]] = None

    # -- wiring -----------------------------------------------------------

    def set_delivery_callback(self, node: int, callback: DeliveryCallback) -> None:
        """Install the function invoked when a packet arrives at ``node``."""
        self._check_node(node)
        self._callbacks[node] = callback

    def _deliver(self, packet: Packet, cycle: int) -> None:
        """Stamp delivery, record stats, invoke the destination callback."""
        packet.deliver_cycle = cycle
        self.stats.record_delivery(packet)
        key = (packet.src, packet.dst)
        self._traffic[key] = self._traffic.get(key, 0) + 1
        callback = self._callbacks[packet.dst]
        if callback is not None:
            callback(packet)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    # -- the driving interface ---------------------------------------------

    @abc.abstractmethod
    def try_send(self, packet: Packet, cycle: int) -> bool:
        """Offer ``packet`` to the network at ``cycle``.

        Returns ``True`` if accepted (source queue had room); ``False``
        means the caller must stall and retry later.
        """

    @abc.abstractmethod
    def tick(self, cycle: int) -> None:
        """Advance the network by one processor cycle."""

    # -- fast-forward horizon (see docs/performance.md) ---------------------

    def next_event(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which this network can change state.

        ``cycle`` ("now") means the network must be ticked every cycle;
        ``None`` means it is fully idle and imposes no horizon.  The
        default pins the horizon to "now", which disables fast-forward
        over this network but is always correct; models override it
        with a real horizon.
        """
        return cycle

    def skip(self, start: int, end: int) -> None:
        """Account for the tick-free jump over ``[start, end)``.

        Called instead of ``tick`` for every cycle in the range when the
        fast-forward engine proved nothing can happen.  Models with
        per-cycle counters (e.g. FSOI slot tallies) override this; the
        default has nothing to account.
        """

    def can_accept(self, node: int, lane: LaneKind) -> bool:
        """Whether a send from ``node`` on ``lane`` would currently succeed.

        Default is optimistic; models with finite queues override this.
        """
        self._check_node(node)
        return True

    def traffic_matrix(self) -> list[list[int]]:
        """Delivered-packet counts indexed [src][dst].

        The communication pattern the run actually exercised — stencil
        codes light up mesh-neighbour entries, butterfly codes the XOR
        diagonals, sync-heavy codes the sync variables' home columns.
        """
        matrix = [[0] * self.num_nodes for _ in range(self.num_nodes)]
        for (src, dst), count in self._traffic.items():
            matrix[src][dst] = count
        return matrix

    def quiescent(self) -> bool:
        """True when no packets are buffered or in flight (end-of-run drain)."""
        return int(self.stats.sent) == int(self.stats.delivered)
