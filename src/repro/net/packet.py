"""Network packet definition and the PID / ~PID collision-detection code.

Packet sizes follow Table 3: a 72-bit flit; meta packets are one flit,
data packets are five.  The FSOI header carries both the sender id (PID)
and its bitwise complement (~PID).  When two or more optical packets
collide at a receiver the photodetector sees the logical **OR** of the
light pulses, so at least one bit position of the merged header has both
PID and ~PID set — an impossible codeword that flags the collision
(paper §4.3.2).

The same OR-merge also yields the *candidate-sender superset* used by the
data-lane collision-resolution hint (paper §5.2): any node whose PID is a
bit-subset of the merged PID (and whose ~PID is a subset of the merged
~PID) might have participated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable

__all__ = [
    "LaneKind",
    "Packet",
    "make_packet",
    "FLIT_BITS",
    "META_PACKET_BITS",
    "DATA_PACKET_BITS",
    "merged_header",
    "collision_detected",
    "candidate_senders",
    "merged_one_hot",
    "one_hot_senders",
]

FLIT_BITS = 72
META_PACKET_BITS = FLIT_BITS          # 1 flit
DATA_PACKET_BITS = 5 * FLIT_BITS      # 5 flits

_packet_ids = itertools.count()


class LaneKind(str, Enum):
    """Which lane (and therefore slot length) a packet travels on."""

    META = "meta"
    DATA = "data"

    @property
    def bits(self) -> int:
        return META_PACKET_BITS if self is LaneKind.META else DATA_PACKET_BITS

    @property
    def flits(self) -> int:
        return 1 if self is LaneKind.META else 5


@dataclass(slots=True)
class Packet:
    """One network packet, as seen by any interconnect model.

    Timing fields are stamped by the network that carries the packet and
    feed the latency breakdown of Figures 6/7:

    * ``enqueue_cycle`` — handed to the network (start of queuing delay).
    * ``scheduled_cycle`` — when it becomes *eligible* to contend:
      ``enqueue_cycle`` plus any intentional scheduling delay (request
      spacing, §5.2).  The gap enqueue -> scheduled is the paper's
      "scheduling delay"; scheduled -> first transmission is queuing
      (waiting behind earlier packets and for a slot boundary).
    * ``first_tx_cycle`` — first transmission attempt (collision
      resolution time accrues from here to ``final_tx_cycle``).
    * ``final_tx_cycle`` — start of the successful transmission.
    * ``deliver_cycle`` — delivery at the destination.
    """

    src: int
    dst: int
    lane: LaneKind
    payload: Any = None
    is_reply_to_request: bool = False
    is_writeback: bool = False
    is_memory: bool = False
    expects_data_reply: bool = False
    #: Invoked (with no arguments) when the transmission's confirmation
    #: arrives back at the sender.  Only FSOI has a confirmation channel;
    #: other networks never call it.  Used by §5.1's
    #: confirmation-as-acknowledgment optimization.
    on_confirmed: Any = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    enqueue_cycle: int = -1
    scheduled_cycle: int = -1
    first_tx_cycle: int = -1
    final_tx_cycle: int = -1
    deliver_cycle: int = -1
    retries: int = 0
    #: Fault-layer markers (repro.faults); declared as fields so the
    #: ``slots`` layout has somewhere to put them.
    _corrupted: bool = field(default=False, repr=False, compare=False)
    _fault_delivered: bool = field(default=False, repr=False, compare=False)
    _fault_confirm_fired: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"packet to self: node {self.src}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"negative node id: src={self.src} dst={self.dst}")

    @property
    def bits(self) -> int:
        return self.lane.bits

    @property
    def flits(self) -> int:
        return self.lane.flits

    # -- latency components (valid after delivery) ------------------------

    @property
    def scheduling_delay(self) -> int:
        """Intentional delay inserted to avoid collisions (§5.2)."""
        return self.scheduled_cycle - self.enqueue_cycle

    @property
    def queuing_delay(self) -> int:
        """Waiting behind earlier packets and for a slot boundary."""
        return self.first_tx_cycle - self.scheduled_cycle

    @property
    def resolution_delay(self) -> int:
        return self.final_tx_cycle - self.first_tx_cycle

    @property
    def network_delay(self) -> int:
        return self.deliver_cycle - self.final_tx_cycle

    @property
    def total_delay(self) -> int:
        return self.deliver_cycle - self.enqueue_cycle


_new_packet = Packet.__new__


def make_packet(
    src: int,
    dst: int,
    lane: LaneKind,
    payload: Any,
    is_reply_to_request: bool,
    is_writeback: bool,
    is_memory: bool,
    expects_data_reply: bool,
    uid: int,
) -> Packet:
    """Hot-path constructor: direct slot writes, caller-supplied uid.

    Bit-identical to calling the dataclass minus the ``__post_init__``
    validation — the one caller (``CmpSystem._packetize``) only ever
    packetizes remote messages between in-range nodes, so ``src != dst``
    and both ids are non-negative by construction.
    """
    packet = _new_packet(Packet)
    packet.src = src
    packet.dst = dst
    packet.lane = lane
    packet.payload = payload
    packet.is_reply_to_request = is_reply_to_request
    packet.is_writeback = is_writeback
    packet.is_memory = is_memory
    packet.expects_data_reply = expects_data_reply
    packet.on_confirmed = None
    packet.uid = uid
    packet.enqueue_cycle = -1
    packet.scheduled_cycle = -1
    packet.first_tx_cycle = -1
    packet.final_tx_cycle = -1
    packet.deliver_cycle = -1
    packet.retries = 0
    packet._corrupted = False
    packet._fault_delivered = False
    packet._fault_confirm_fired = False
    return packet


# -- PID / ~PID collision code ---------------------------------------------


def merged_header(sender_ids: Iterable[int], id_bits: int) -> tuple[int, int]:
    """OR-merge the (PID, ~PID) headers of simultaneous senders.

    Returns the merged ``(pid, pid_complement)`` bit patterns a receiver
    observes.  With a single sender the pair is consistent; with more
    than one it is not.
    """
    mask = (1 << id_bits) - 1
    pid_or = 0
    pidc_or = 0
    for sender in sender_ids:
        if sender < 0 or sender > mask:
            raise ValueError(f"sender id {sender} does not fit in {id_bits} bits")
        pid_or |= sender
        pidc_or |= (~sender) & mask
    return pid_or, pidc_or


def collision_detected(pid: int, pid_complement: int) -> bool:
    """True when the merged header is inconsistent (some bit set in both).

    >>> collision_detected(*merged_header([3], id_bits=4))
    False
    >>> collision_detected(*merged_header([3, 5], id_bits=4))
    True
    """
    return (pid & pid_complement) != 0


def merged_one_hot(sender_ids: Iterable[int], num_nodes: int) -> int:
    """OR-merge one-hot sender headers (paper footnote 7).

    For small-scale networks the header can afford a bit *vector*
    encoding of the PID — one bit per node.  The OR of colliding
    headers then identifies the participants exactly, with no innocent
    candidates.
    """
    merged = 0
    for sender in sender_ids:
        if not 0 <= sender < num_nodes:
            raise ValueError(f"sender {sender} outside 0..{num_nodes - 1}")
        merged |= 1 << sender
    return merged


def one_hot_senders(merged: int, num_nodes: int) -> list[int]:
    """Decode the exact participant set from a one-hot OR pattern.

    >>> one_hot_senders(merged_one_hot([2, 5], 8), 8)
    [2, 5]
    """
    if merged < 0 or merged >= (1 << num_nodes):
        raise ValueError(f"pattern {merged:#x} does not fit {num_nodes} nodes")
    return [node for node in range(num_nodes) if merged & (1 << node)]


def candidate_senders(
    pid: int, pid_complement: int, node_ids: Iterable[int], id_bits: int
) -> list[int]:
    """Superset of nodes that *could* have contributed to a merged header.

    A node is a candidate iff its PID bits are covered by the merged PID
    and its ~PID bits are covered by the merged ~PID.  All true
    participants are always included; some innocents may be too — the
    paper reports the resulting hint picks a true collider 94% of the
    time once combined with expected-reply knowledge.
    """
    mask = (1 << id_bits) - 1
    out = []
    for node in node_ids:
        if node < 0 or node > mask:
            raise ValueError(f"node id {node} does not fit in {id_bits} bits")
        node_c = (~node) & mask
        if (node & pid) == node and (node_c & pid_complement) == node_c:
            out.append(node)
    return out
