"""FSOI subsystem power (Table 1 circuit numbers, §7.2).

The integrated VCSELs are the key: a transmitter is powered off (biased
below threshold, driver gated) whenever it is not sending, burning only
0.43 mW of standby; the receivers stay on at 4.2 mW each.  The paper
reports "an insignificant 1.8 W of average power in the optical
interconnect subsystem" for the 16-node system, which this model
reproduces from the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lanes import LaneConfig
from repro.core.link import LinkPower

__all__ = ["FsoiPowerModel"]


@dataclass(frozen=True)
class FsoiPowerModel:
    """Energy accounting for one FSOI interconnect.

    Parameters
    ----------
    link_power:
        Per-transceiver powers (Table 1).
    lanes:
        Lane widths / receiver counts (Table 3) — sets how many
        transmitters and receivers each node carries.
    data_rate:
        Optical channel rate, bits/s.
    core_clock:
        Core frequency, Hz (converts cycles to seconds).
    """

    link_power: LinkPower = field(default_factory=LinkPower)
    lanes: LaneConfig = field(default_factory=LaneConfig)
    data_rate: float = 40e9
    core_clock: float = 3.3e9

    def transmitters_per_node(self) -> int:
        """Concurrently *drivable* transmitter bit-slices per node.

        One meta lane, one data lane and one confirmation VCSEL can be
        active at a time per node (dedicated per-destination arrays
        share the driver/serializer), so standby/active power follows
        the lane widths, not the total VCSEL count.
        """
        return (
            self.lanes.meta_vcsels
            + self.lanes.data_vcsels
            + self.lanes.confirmation_vcsels
        )

    def receivers_per_node(self) -> int:
        """Receiver bit-slices per node (always on)."""
        return (
            self.lanes.meta_receivers * self.lanes.meta_vcsels
            + self.lanes.data_receivers * self.lanes.data_vcsels
            + self.lanes.confirmation_vcsels
        )

    def transmit_energy(self, bits: int) -> float:
        """Dynamic transmit energy for ``bits`` on-the-wire bits, joules."""
        if bits < 0:
            raise ValueError(f"negative bit count: {bits}")
        return bits * self.link_power.energy_per_bit(self.data_rate)

    def static_power(self, num_nodes: int) -> float:
        """Always-on receiver + transmitter-standby power, watts."""
        per_node = (
            self.receivers_per_node() * self.link_power.receiver
            + self.transmitters_per_node() * self.link_power.transmitter_standby
        )
        return per_node * num_nodes

    def energy(self, bits_sent: int, cycles: int, num_nodes: int) -> float:
        """Total FSOI subsystem energy over a run, joules."""
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        seconds = cycles / self.core_clock
        return self.transmit_energy(bits_sent) + self.static_power(num_nodes) * seconds

    def average_power(self, bits_sent: int, cycles: int, num_nodes: int) -> float:
        """Average subsystem power over a run, watts (paper: ~1.8 W)."""
        if cycles == 0:
            return 0.0
        seconds = cycles / self.core_clock
        return self.energy(bits_sent, cycles, num_nodes) / seconds
