"""Thermal model of the 3-D-integrated FSOI stack (paper §3.3).

The free-space optical layer sits *above* the chip, so the classic
top-mounted heatsink is displaced and heat must leave through the
alternatives the paper enumerates:

* **microchannel liquid cooling** — coolant through microchannel heat
  sinks on the back of each die, fed by fluidic TSVs (refs [33, 34]);
* **high-conductivity spreaders** — diamond / CNT / graphene layers
  (1000-3500 W/m·K) carrying heat laterally to the stack's edges
  (ref [35]);
* **air cooling** — kept as the baseline that the paper argues becomes
  insufficient for 3-D stacks.

The model is a steady-state thermal-resistance network: junction ->
(die + TSV/spreader path) -> heat-removal interface -> ambient/coolant.
It answers the §3.3 questions quantitatively: does each option keep the
CMOS junctions and — more delicately — the GaAs VCSEL layer inside
their operating envelopes at the measured chip power?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

__all__ = ["CoolingOption", "ThermalStack", "ThermalReport"]


class CoolingOption(Enum):
    """§3.3's heat-removal alternatives."""

    AIR = "air"
    MICROCHANNEL = "microchannel"
    DIAMOND_SPREADER = "diamond_spreader"


#: Interface resistance junction-to-ambient/coolant for each option,
#: K·cm²/W (area-normalized; representative of the cited literature:
#: Tuckerman & Pease demonstrated ~0.09 K·cm²/W for microchannels).
_INTERFACE_RESISTIVITY = {
    CoolingOption.AIR: 1.4,
    CoolingOption.MICROCHANNEL: 0.12,
    CoolingOption.DIAMOND_SPREADER: 0.35,
}

#: Thermal conductivities, W/(m K) (paper §3.3 quotes diamond
#: 1000-2200, CNT 3000-3500).
CONDUCTIVITY = {
    "silicon": 150.0,
    "gaas": 55.0,
    "diamond": 1600.0,
}


@dataclass(frozen=True)
class ThermalReport:
    """Steady-state temperatures of the stack, degrees C."""

    cooling: CoolingOption
    chip_power: float
    cmos_junction: float
    vcsel_layer: float
    cmos_limit: float = 105.0
    vcsel_limit: float = 85.0

    @property
    def cmos_ok(self) -> bool:
        return self.cmos_junction <= self.cmos_limit

    @property
    def vcsel_ok(self) -> bool:
        return self.vcsel_layer <= self.vcsel_limit

    @property
    def feasible(self) -> bool:
        return self.cmos_ok and self.vcsel_ok

    @property
    def vcsel_margin(self) -> float:
        """Headroom before the VCSEL layer leaves its envelope, K."""
        return self.vcsel_limit - self.vcsel_layer


@dataclass(frozen=True)
class ThermalStack:
    """The 3-D stack of Figure 1a/b, thermally.

    Parameters
    ----------
    die_area:
        Heat-extraction area, m² (a 1.4 cm x 1.4 cm die by default).
    si_thickness, gaas_thickness:
        Die thicknesses, meters (the paper's GaAs substrate is 430 µm).
    coolant_temperature:
        Ambient air or inlet coolant temperature, degrees C.
    optical_layer_fraction:
        Fraction of chip power dissipated in the GaAs photonics layer
        (the FSOI transceivers are ~1-2 W of ~120-160 W).
    """

    die_area: float = (1.4e-2) ** 2
    si_thickness: float = 200e-6
    gaas_thickness: float = 430e-6
    coolant_temperature: float = 45.0
    optical_layer_fraction: float = 0.015

    def __post_init__(self) -> None:
        if self.die_area <= 0:
            raise ValueError(f"die area must be positive: {self.die_area}")
        if not 0.0 <= self.optical_layer_fraction <= 1.0:
            raise ValueError("optical layer fraction out of [0, 1]")

    # -- resistances --------------------------------------------------------

    def conduction_resistance(self, thickness: float, conductivity: float) -> float:
        """1-D conduction through a die layer, K/W."""
        if thickness < 0 or conductivity <= 0:
            raise ValueError("bad layer parameters")
        return thickness / (conductivity * self.die_area)

    def interface_resistance(self, cooling: CoolingOption) -> float:
        """Junction-to-coolant interface resistance, K/W."""
        resistivity_cm2 = _INTERFACE_RESISTIVITY[cooling]
        return resistivity_cm2 / (self.die_area * 1e4)  # K cm^2/W -> K/W

    #: Spreader layer for the DIAMOND_SPREADER option (CNT-class
    #: conductivity, §3.3 quotes 3000-3500 W/m K; 500 um layer).
    spreader_conductivity: float = 3000.0
    spreader_thickness: float = 500e-6

    def lateral_spreading_resistance(self) -> float:
        """Edge extraction for the spreader option, K/W.

        Radial spreading through the high-conductivity layer from the
        die center to edge-mounted thermal pipes:
        ``R = ln(r_edge / r_source) / (2 pi k t)``.
        """
        r_edge = math.sqrt(self.die_area) / 2
        r_source = 1e-3  # effective source radius of the hot region
        return math.log(r_edge / r_source) / (
            2 * math.pi * self.spreader_conductivity * self.spreader_thickness
        )

    # -- evaluation --------------------------------------------------------

    def evaluate(self, chip_power: float, cooling: CoolingOption) -> ThermalReport:
        """Steady-state temperatures for ``chip_power`` watts.

        >>> stack = ThermalStack()
        >>> stack.evaluate(150.0, CoolingOption.MICROCHANNEL).feasible
        True
        >>> stack.evaluate(150.0, CoolingOption.AIR).feasible
        False
        """
        if chip_power < 0:
            raise ValueError(f"negative power: {chip_power}")
        r_interface = self.interface_resistance(cooling)
        if cooling is CoolingOption.DIAMOND_SPREADER:
            r_interface += self.lateral_spreading_resistance()
        r_silicon = self.conduction_resistance(
            self.si_thickness, CONDUCTIVITY["silicon"]
        )
        cmos = self.coolant_temperature + chip_power * (r_interface + r_silicon)

        # The GaAs photonics die is bonded to the back of the silicon
        # chip: its own dissipation crosses the GaAs substrate, and it
        # soaks in the CMOS layer's temperature underneath.
        optical_power = chip_power * self.optical_layer_fraction
        r_gaas = self.conduction_resistance(
            self.gaas_thickness, CONDUCTIVITY["gaas"]
        )
        vcsel = cmos + optical_power * r_gaas

        return ThermalReport(
            cooling=cooling,
            chip_power=chip_power,
            cmos_junction=cmos,
            vcsel_layer=vcsel,
        )

    def max_power(self, cooling: CoolingOption, step: float = 1.0) -> float:
        """Largest chip power the option sustains with both limits met."""
        power = 0.0
        while self.evaluate(power + step, cooling).feasible:
            power += step
            if power > 2000:  # pragma: no cover - unphysical guard
                break
        return power

    def survey(self, chip_power: float) -> dict[CoolingOption, ThermalReport]:
        """Evaluate every §3.3 option at the same power."""
        return {
            option: self.evaluate(chip_power, option) for option in CoolingOption
        }
