"""Whole-chip energy accounting (Figure 8, §7.2).

Components, mirroring Figure 8's stacking:

* **Network** — :class:`repro.power.optical.FsoiPowerModel` or
  :class:`repro.power.mesh_power.MeshPowerModel` depending on the run.
* **Processor core + cache** — dynamic power while busy, a large
  fraction of it still burned while stalled (2010-era Wattch-style
  conditional clock gating leaves most of the clock tree and structures
  toggling), so core energy is mostly proportional to *time*: a faster
  interconnect saves core energy by finishing sooner.
* **Leakage** — constant per-core power (we omit HotSpot's temperature
  feedback; see DESIGN.md).

The model is calibrated so the 16-node mesh baseline lands near the
paper's 156 W average and the FSOI system near 121 W, with the network
subsystem gap around 20x.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cmp.results import CmpResults
from repro.power.mesh_power import MeshPowerModel
from repro.power.optical import FsoiPowerModel

__all__ = ["SystemPowerModel", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy (joules), power (watts) and EDP for one run."""

    network_energy: float
    core_energy: float
    leakage_energy: float
    seconds: float
    instructions: int

    @property
    def total_energy(self) -> float:
        return self.network_energy + self.core_energy + self.leakage_energy

    @property
    def average_power(self) -> float:
        return self.total_energy / self.seconds if self.seconds else 0.0

    @property
    def time_per_instruction(self) -> float:
        return self.seconds / self.instructions if self.instructions else 0.0

    def energy_delay_product(self) -> float:
        """EDP for the fixed work this run performed: E x (T per unit work).

        Comparing runs of the same app/window, divide per instruction so
        runs that got more work done in the window are not penalised.
        """
        if not self.instructions:
            return 0.0
        return (self.total_energy / self.instructions) * self.time_per_instruction

    def relative_to(self, baseline: "EnergyReport") -> dict[str, float]:
        """Figure 8's normalization: per-unit-work energy vs baseline."""
        if baseline.instructions == 0 or self.instructions == 0:
            raise ValueError("both runs must have made progress")
        scale = baseline.instructions / self.instructions
        base = baseline.total_energy
        return {
            "network": self.network_energy * scale / base,
            "core_cache": self.core_energy * scale / base,
            "leakage": self.leakage_energy * scale / base,
            "total": self.total_energy * scale / base,
        }


@dataclass(frozen=True)
class SystemPowerModel:
    """Converts a :class:`CmpResults` into an :class:`EnergyReport`.

    Per-core powers are 45 nm-era estimates for a 4-wide OoO core plus
    its L1/L2 slice at 3.3 GHz.
    """

    core_busy_power: float = 6.5      # W, core+cache while issuing
    core_stall_power: float = 4.5     # W, while stalled (clocks still up)
    core_leakage_power: float = 2.8   # W, per core, always
    core_clock: float = 3.3e9
    fsoi: FsoiPowerModel = field(default_factory=FsoiPowerModel)
    mesh: MeshPowerModel = field(default_factory=MeshPowerModel)

    def network_energy(self, results: CmpResults) -> float:
        cycles = results.cycles
        nodes = results.num_nodes
        if results.network == "mesh":
            return self.mesh.energy(results.mesh_activity, cycles, nodes)
        if results.network in ("fsoi", "corona"):
            # Corona shares the integrated-optics power story; its extra
            # arbitration cost is latency, not energy, to first order.
            return self.fsoi.energy(results.bits_sent, cycles, nodes)
        # Idealized networks: charge only the FSOI-style dynamic bit
        # energy (they are bounds, not designs).
        return self.fsoi.transmit_energy(results.bits_sent)

    def report(self, results: CmpResults) -> EnergyReport:
        seconds = results.cycles / self.core_clock
        busy = results.core_cycles["busy"] / self.core_clock
        stalled = (
            results.core_cycles["stall"] + results.core_cycles["sync"]
        ) / self.core_clock
        core_energy = (
            busy * self.core_busy_power + stalled * self.core_stall_power
        )
        leakage = (
            results.num_nodes * self.core_leakage_power * seconds
        )
        return EnergyReport(
            network_energy=self.network_energy(results),
            core_energy=core_energy,
            leakage_energy=leakage,
            seconds=seconds,
            instructions=results.instructions,
        )
