"""Energy and power models (paper §6 "Power", §7.2, Figure 8).

The paper's power stack (Wattch + Orion + HotSpot + BSIM3 leakage) is
replaced by per-event energy models calibrated at the same 45 nm node:

* :mod:`repro.power.optical` — FSOI subsystem power from Table 1's
  circuit numbers: transmit energy per bit, below-threshold standby,
  always-on receivers, confirmation lane.
* :mod:`repro.power.mesh_power` — Orion-style router energy: per-flit
  buffer write/read, crossbar traversal, arbitration and link energies,
  plus static (clock + leakage) router power.
* :mod:`repro.power.system` — whole-chip accounting: core + cache
  dynamic energy per instruction/access, temperature-independent
  leakage, plus the network model; produces the Figure 8 comparison
  (energy relative to the mesh baseline, average power, energy-delay
  product).
* :mod:`repro.power.thermal` — the §3.3 thermal-resistance model of the
  3-D stack: air vs microchannel liquid vs high-conductivity spreader
  heat removal, with the GaAs VCSEL layer's temperature envelope.
"""

from repro.power.mesh_power import MeshPowerModel
from repro.power.optical import FsoiPowerModel
from repro.power.system import EnergyReport, SystemPowerModel
from repro.power.thermal import CoolingOption, ThermalReport, ThermalStack

__all__ = [
    "MeshPowerModel",
    "FsoiPowerModel",
    "SystemPowerModel",
    "EnergyReport",
    "CoolingOption",
    "ThermalReport",
    "ThermalStack",
]
