"""Orion-style electrical mesh energy model (§6, ref [52]).

A packet-switched router spends energy on every flit it touches —
buffer write + read, crossbar traversal, allocation — plus the links;
and, dominating in practice, it burns *static* power (clock tree,
hundreds of flit buffers, allocator state) all the time.  The paper
points at the Alpha 21364 router — hundreds of packet buffers, 20% of
the area of core + 128 KB of cache — to argue this overhead is real;
the 20x network-energy gap of Figure 8 comes mostly from the static
term versus FSOI's powered-off lasers.

Per-event energies are 45 nm Orion-class estimates for 72-bit flits.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MeshPowerModel"]

PJ = 1e-12


@dataclass(frozen=True)
class MeshPowerModel:
    """Energy accounting for the electrical mesh.

    Parameters
    ----------
    buffer_write_energy, buffer_read_energy:
        Per-flit buffer energies, joules.
    crossbar_energy, arbitration_energy:
        Per-flit switch traversal / allocation energies, joules.
    link_energy:
        Per-flit per-hop link energy (few-mm 45 nm wires with
        repeaters), joules.
    router_static_power:
        Clock + leakage of one 5-port 4-VC router, watts.
    core_clock:
        Core frequency, Hz.
    """

    buffer_write_energy: float = 2.0 * PJ
    buffer_read_energy: float = 1.5 * PJ
    crossbar_energy: float = 3.0 * PJ
    arbitration_energy: float = 0.3 * PJ
    link_energy: float = 5.0 * PJ
    router_static_power: float = 1.5
    core_clock: float = 3.3e9

    def dynamic_energy(self, activity: dict[str, int]) -> float:
        """Energy from a run's switching activity counters, joules.

        ``activity`` is :meth:`repro.mesh.network.MeshNetwork.activity`.
        """
        return (
            activity.get("buffer_writes", 0) * self.buffer_write_energy
            + activity.get("buffer_reads", 0) * self.buffer_read_energy
            + activity.get("flits_routed", 0)
            * (self.crossbar_energy + self.arbitration_energy)
            + activity.get("link_flits", 0) * self.link_energy
        )

    def static_power(self, num_nodes: int) -> float:
        """Total router static power, watts."""
        return num_nodes * self.router_static_power

    def energy(self, activity: dict[str, int], cycles: int, num_nodes: int) -> float:
        """Total mesh network energy over a run, joules."""
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        seconds = cycles / self.core_clock
        return self.dynamic_energy(activity) + self.static_power(num_nodes) * seconds

    def average_power(
        self, activity: dict[str, int], cycles: int, num_nodes: int
    ) -> float:
        if cycles == 0:
            return 0.0
        seconds = cycles / self.core_clock
        return self.energy(activity, cycles, num_nodes) / seconds
