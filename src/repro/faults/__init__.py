"""Fault injection and graceful degradation (docs/faults.md).

``repro.faults`` turns the simulator's happy path into a testable
resilience story: a :class:`FaultPlan` declares *what breaks and when*
(dead VCSEL lanes, dark receivers, thermal droop, bit-error bursts,
confirmation drops), and the :class:`FaultInjector` executes it inside
:class:`repro.core.network.FsoiNetwork` with deterministic, isolated
randomness.  An empty plan is guaranteed passive — no injector, no
extra counters, no RNG draws — so fault-free runs are byte-identical
to a build without this package.
"""

from repro.faults.plan import (
    LANE_NAMES,
    ConfirmationDrop,
    ErrorBurst,
    FaultPlan,
    LaneFault,
    ReceiverFault,
    ThermalDroop,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "LANE_NAMES",
    "ConfirmationDrop",
    "ErrorBurst",
    "FaultInjector",
    "FaultPlan",
    "LaneFault",
    "ReceiverFault",
    "ThermalDroop",
]
