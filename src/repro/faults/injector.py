"""Runtime fault injection for the FSOI network.

The :class:`FaultInjector` answers the network's questions — *is this
transmitter dark right now?  which receivers at the destination still
work?  does this packet get corrupted?  does this confirmation make it
back?* — from a :class:`repro.faults.plan.FaultPlan` schedule plus two
private RNG streams.  It is only constructed when the plan is
non-empty, so a fault-free network pays nothing and draws nothing.

Two design rules keep runs reproducible and comparable:

* **Physics, not knobs.** Thermal droop maps to a bit-error rate
  through the real link chain: scale the VCSEL's emitted OOK levels by
  the droop, push them through the free-space path and photodetector,
  and read the BER off :class:`repro.optics.noise.ReceiverNoise` — the
  same Q-factor model Table 1 is built on.
* **Isolated randomness.** The injector draws from its own named
  streams (``faults.corrupt``, ``faults.confirm``), derived from the
  network hub's ``"faults"`` child and offset by the plan seed, so the
  back-off/error/hint streams of the fault-free simulator are
  untouched (the passivity guarantee golden tests rely on).

The injector also tracks *lane-down detection*: after
``plan.detect_threshold`` consecutive dark sends on a lane the sender
stops lighting it (lane sparing) and its queued traffic fast-fails
into back-off without occupying the medium; the suppression clears as
soon as the schedule heals the lane (modelling a periodic probe).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan
from repro.net.packet import LaneKind
from repro.util.rng import RngHub

__all__ = ["FaultInjector"]


def _active(cycle: int, start: int, end: Optional[int]) -> bool:
    return start <= cycle and (end is None or cycle < end)


class FaultInjector:
    """Schedule-driven fault decisions for one :class:`FsoiNetwork`."""

    def __init__(
        self,
        plan: FaultPlan,
        num_nodes: int,
        receivers_by_lane: dict[LaneKind, int],
        rng: RngHub,
    ):
        if plan.is_empty():
            raise ValueError("refusing to build an injector for an empty plan")
        plan.validate_for(
            num_nodes,
            {lane.value: count for lane, count in receivers_by_lane.items()},
        )
        self.plan = plan
        self.num_nodes = num_nodes
        self._receivers = dict(receivers_by_lane)
        seed_ns = rng.child(f"plan.{plan.seed}")
        self._corrupt_rng = seed_ns.stream("faults.corrupt")
        self._confirm_rng = seed_ns.stream("faults.confirm")

        # Index the schedule for O(1) per-event queries.
        self._lane_faults: dict[tuple[int, LaneKind], list] = {}
        for entry in plan.lane_faults:
            key = (entry.node, LaneKind(entry.lane))
            self._lane_faults.setdefault(key, []).append(entry)
        self._receiver_faults: dict[tuple[int, LaneKind], list] = {}
        for entry in plan.receiver_faults:
            key = (entry.node, LaneKind(entry.lane))
            self._receiver_faults.setdefault(key, []).append(entry)
        self._bursts = {
            lane: [b for b in plan.bursts if b.lane in (None, lane.value)]
            for lane in (LaneKind.META, LaneKind.DATA)
        }
        self._droops = list(plan.droops)
        self._drops = list(plan.confirmation_drops)

        # Lane-down detection state.
        self._dark_streak: dict[tuple[int, LaneKind], int] = {}
        self._marked_down: set[tuple[int, LaneKind]] = set()

        # droop_db -> per-bit error rate via the optical chain.
        self._droop_ber_cache: dict[float, float] = {}

    # -- transmit-side faults -------------------------------------------

    def tx_lane_dead(self, node: int, lane: LaneKind, cycle: int) -> bool:
        """Whether ``node``'s transmit array on ``lane`` is dark now."""
        return any(
            _active(cycle, entry.start, entry.end)
            for entry in self._lane_faults.get((node, lane), ())
        )

    def note_dark_send(self, node: int, lane: LaneKind) -> bool:
        """Record an unconfirmed dark send; True when the lane is newly
        declared down (the detection threshold was just crossed)."""
        key = (node, lane)
        streak = self._dark_streak.get(key, 0) + 1
        self._dark_streak[key] = streak
        if streak >= self.plan.detect_threshold and key not in self._marked_down:
            self._marked_down.add(key)
            return True
        return False

    def note_successful_send(self, node: int, lane: LaneKind) -> None:
        """A send produced light: any dark streak is broken."""
        key = (node, lane)
        if self._dark_streak.pop(key, None) is not None:
            self._marked_down.discard(key)

    @property
    def suppression_active(self) -> bool:
        """Whether any lane is currently marked down by its sender.

        While true, :meth:`lane_suppressed` is *stateful*: querying it
        at a slot boundary is what un-marks a healed lane.  The network
        therefore caps its fast-forward horizon at the next boundary so
        no query — and no un-marking — is ever skipped.  When false,
        ``lane_suppressed`` is pure and boundaries may be skipped.
        """
        return bool(self._marked_down)

    def lane_suppressed(self, node: int, lane: LaneKind, cycle: int) -> bool:
        """Whether the sender has detected its dead lane and spares it.

        Clears automatically once the schedule heals the lane, so a
        transient fault resumes service without outside intervention.
        """
        key = (node, lane)
        if key not in self._marked_down:
            return False
        if self.tx_lane_dead(node, lane, cycle):
            return True
        self._marked_down.discard(key)
        self._dark_streak.pop(key, None)
        return False

    # -- receive-side faults --------------------------------------------

    def receiver_health(
        self, dst: int, lane: LaneKind, cycle: int
    ) -> Optional[tuple[bool, ...]]:
        """Health vector of ``dst``'s receivers, or None when all work."""
        faults = self._receiver_faults.get((dst, lane))
        if not faults:
            return None
        dead = {
            entry.receiver
            for entry in faults
            if _active(cycle, entry.start, entry.end)
        }
        if not dead:
            return None
        return tuple(
            index not in dead for index in range(self._receivers[lane])
        )

    # -- corruption (droop + bursts) ------------------------------------

    def droop_ber(self, droop_db: float) -> float:
        """Per-bit error rate after a ``droop_db`` emitted-power droop.

        Computed through the physical chain (not interpolated): both OOK
        levels of the Table 1 link are attenuated by the droop, pushed
        through the free-space path and photodetector, and scored by the
        receiver's Gaussian Q-factor model.
        """
        ber = self._droop_ber_cache.get(droop_db)
        if ber is None:
            from repro.core.link import OpticalLink
            from repro.util.units import db_to_linear

            link = OpticalLink()
            scale = 1.0 / db_to_linear(droop_db)
            p1, p0 = link.received_powers()
            ber = link.noise.ber(
                link.detector.photocurrent(p1 * scale),
                link.detector.photocurrent(p0 * scale),
            )
            self._droop_ber_cache[droop_db] = ber
        return ber

    def corruption_probability(
        self, src: int, lane: LaneKind, cycle: int, bits: int
    ) -> float:
        """Probability the packet arrives corrupted (bursts + droop)."""
        survive = 1.0
        for burst in self._bursts[lane]:
            if burst.node in (None, src) and _active(
                cycle, burst.start, burst.end
            ):
                survive *= 1.0 - burst.rate
        for droop in self._droops:
            if droop.node in (None, src) and _active(
                cycle, droop.start, droop.end
            ):
                survive *= (1.0 - self.droop_ber(droop.droop_db)) ** bits
        return 1.0 - survive

    def draw_corruption(self, probability: float) -> bool:
        return probability > 0.0 and self._corrupt_rng.random() < probability

    # -- confirmation drops ---------------------------------------------

    def drop_confirmation(self, src: int, cycle: int) -> bool:
        """Whether the confirmation heading back to ``src`` is lost."""
        survive = 1.0
        for drop in self._drops:
            if drop.node in (None, src) and _active(
                cycle, drop.start, drop.end
            ):
                survive *= 1.0 - drop.rate
        probability = 1.0 - survive
        return probability > 0.0 and self._confirm_rng.random() < probability
