"""Declarative fault schedules for the FSOI network.

A :class:`FaultPlan` is a frozen, serializable description of *what
goes wrong and when*: VCSEL lanes dying (permanently or transiently),
receivers going dark, thermal power droop degrading the optical budget,
bit-error bursts, and confirmation-channel drops.  Plans are pure data —
the runtime behaviour lives in :class:`repro.faults.injector.FaultInjector`.

Every fault carries an activity window ``[start, end)`` in CPU cycles;
``end=None`` means the fault is permanent.  Lanes are named by their
string value (``"meta"`` / ``"data"``) so a plan round-trips through
JSON without touching the simulator's enums — which also means plans
flow through the sweep engine's canonical-JSON cache keys unchanged
(see docs/faults.md).

Determinism: a plan embeds its own ``seed``.  The injector derives its
RNG streams from the *network's* hub (child ``"faults"``) so the rest
of the simulator draws exactly the same random numbers with or without
faults; the plan seed only offsets the fault streams.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional

__all__ = [
    "LANE_NAMES",
    "ConfirmationDrop",
    "ErrorBurst",
    "FaultPlan",
    "LaneFault",
    "ReceiverFault",
    "ThermalDroop",
]

LANE_NAMES = ("meta", "data")


def _check_window(start: int, end: Optional[int]) -> None:
    if start < 0:
        raise ValueError(f"fault start cycle must be >= 0: {start}")
    if end is not None and end <= start:
        raise ValueError(f"empty fault window: [{start}, {end})")


def _check_lane(lane: Optional[str], *, optional: bool = False) -> None:
    if lane is None:
        if optional:
            return
        raise ValueError("a lane name is required")
    if lane not in LANE_NAMES:
        raise ValueError(f"unknown lane {lane!r}; choose from {LANE_NAMES}")


def _check_rate(rate: float, what: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{what} must be a probability in [0, 1]: {rate}")


@dataclass(frozen=True)
class LaneFault:
    """A node's transmit VCSEL array for one lane goes dark.

    While active, the node's transmissions on ``lane`` consume the slot
    but emit no light: no receiver sees them, no confirmation comes
    back, and the sender escalates through back-off exactly as for a
    collision.  ``end=None`` models a dead device; a finite window
    models a recoverable brown-out.
    """

    node: int
    lane: str
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0: {self.node}")
        _check_lane(self.lane)
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ReceiverFault:
    """One of a node's receivers for a lane stops detecting light.

    Traffic statically partitioned onto the dead receiver is spared
    onto the destination's next healthy receiver (a deterministic remap
    every sender can compute); if every receiver is dark the
    transmission is lost like a :class:`LaneFault`.
    """

    node: int
    lane: str
    receiver: int
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0: {self.node}")
        if self.receiver < 0:
            raise ValueError(f"receiver index must be >= 0: {self.receiver}")
        _check_lane(self.lane)
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ThermalDroop:
    """Thermal VCSEL power droop, expressed as emitted-power loss in dB.

    The droop is turned into a per-packet corruption probability through
    the link's physical Q-factor chain (``OpticalLink`` received powers
    -> photocurrents -> ``ReceiverNoise.ber``), not an ad-hoc error
    knob — see :meth:`repro.faults.injector.FaultInjector.droop_ber`.
    ``node=None`` droops every transmitter (chip-wide hot spell).
    """

    droop_db: float
    node: Optional[int] = None
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.droop_db <= 0.0:
            raise ValueError(f"droop must be a positive dB loss: {self.droop_db}")
        if self.node is not None and self.node < 0:
            raise ValueError(f"node must be >= 0: {self.node}")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ErrorBurst:
    """A window of elevated per-packet corruption probability.

    Corrupted packets fail the PID/~PID integrity check at the receiver
    (like a collision, §4.3.1): no confirmation is sent and the sender
    retries under back-off.  ``node``/``lane`` of ``None`` apply the
    burst to every source / both lanes.
    """

    rate: float
    node: Optional[int] = None
    lane: Optional[str] = None
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate, "burst corruption rate")
        if self.node is not None and self.node < 0:
            raise ValueError(f"node must be >= 0: {self.node}")
        _check_lane(self.lane, optional=True)
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ConfirmationDrop:
    """The confirmation channel loses a fraction of its pulses.

    The packet *is* received and delivered, but the sender never sees
    the confirmation: it walks the timeout/back-off path and
    retransmits a packet the destination already has.  Duplicate
    receptions are detected and counted, and §5.1 ``on_confirmed``
    hooks fire exactly once.  ``node=None`` affects every sender.
    """

    rate: float
    node: Optional[int] = None
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate, "confirmation drop rate")
        if self.node is not None and self.node < 0:
            raise ValueError(f"node must be >= 0: {self.node}")
        _check_window(self.start, self.end)


_FAULT_FIELDS = {
    "lane_faults": LaneFault,
    "receiver_faults": ReceiverFault,
    "droops": ThermalDroop,
    "bursts": ErrorBurst,
    "confirmation_drops": ConfirmationDrop,
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule for one run.

    The default ``FaultPlan()`` is *empty* and guaranteed passive: the
    network builds no injector, creates no fault counters and consumes
    no extra randomness, so golden snapshots are byte-identical.

    Parameters
    ----------
    giveup_retries:
        Bounded graceful degradation: a sender abandons a packet once
        ``packet.retries`` exceeds this bound (surfaced as the
        ``gave_up_lost`` / ``gave_up_delivered`` metrics).  ``None``
        retries forever, the paper's implicit default.
    detect_threshold:
        Consecutive unconfirmed transmissions on a lane before the
        sender declares the lane down and stops lighting it (lane
        sparing); it probes again once the schedule heals the lane.
    seed:
        Offsets the injector's private RNG streams, so two plans with
        the same schedule but different seeds sample different faults.
    """

    label: str = ""
    lane_faults: tuple[LaneFault, ...] = ()
    receiver_faults: tuple[ReceiverFault, ...] = ()
    droops: tuple[ThermalDroop, ...] = ()
    bursts: tuple[ErrorBurst, ...] = ()
    confirmation_drops: tuple[ConfirmationDrop, ...] = ()
    giveup_retries: Optional[int] = None
    detect_threshold: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _FAULT_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.giveup_retries is not None and self.giveup_retries < 1:
            raise ValueError(
                f"giveup_retries must be >= 1 (or None): {self.giveup_retries}"
            )
        if self.detect_threshold < 1:
            raise ValueError(
                f"detect_threshold must be >= 1: {self.detect_threshold}"
            )

    # -- queries ---------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the plan injects nothing and bounds nothing."""
        return (
            not any(getattr(self, name) for name in _FAULT_FIELDS)
            and self.giveup_retries is None
        )

    def max_node(self) -> int:
        """Largest node index referenced anywhere in the plan (-1 if none)."""
        nodes = [-1]
        for name in _FAULT_FIELDS:
            for entry in getattr(self, name):
                if getattr(entry, "node", None) is not None:
                    nodes.append(entry.node)
        return max(nodes)

    def validate_for(self, num_nodes: int, receivers_by_lane: Mapping[str, int]) -> None:
        """Check the plan fits a concrete network topology."""
        if self.max_node() >= num_nodes:
            raise ValueError(
                f"fault plan references node {self.max_node()} but the "
                f"network has only {num_nodes} nodes"
            )
        for entry in self.receiver_faults:
            available = receivers_by_lane[entry.lane]
            if entry.receiver >= available:
                raise ValueError(
                    f"fault plan references receiver {entry.receiver} on the "
                    f"{entry.lane} lane, which has only {available} receivers"
                )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "label": self.label,
            "giveup_retries": self.giveup_retries,
            "detect_threshold": self.detect_threshold,
            "seed": self.seed,
        }
        for name in _FAULT_FIELDS:
            out[name] = [
                {f.name: getattr(entry, f.name) for f in fields(entry)}
                for entry in getattr(self, name)
            ]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        kwargs: dict[str, Any] = {
            "label": data.get("label", ""),
            "giveup_retries": data.get("giveup_retries"),
            "detect_threshold": int(data.get("detect_threshold", 3)),
            "seed": int(data.get("seed", 0)),
        }
        for name, entry_cls in _FAULT_FIELDS.items():
            kwargs[name] = tuple(
                entry_cls(**entry) for entry in data.get(name, ())
            )
        return cls(**kwargs)

    def ledger_label(self) -> str:
        """The label under which runs with this plan are filed.

        The analytics run ledger (:class:`repro.analytics.RunStore`)
        groups and filters points by fault plan; an unlabelled but
        non-empty plan falls back to its content hash so two distinct
        anonymous schedules never alias, and the empty plan files under
        ``""`` (fault-free).
        """
        if self.label:
            return self.label
        return "" if self.is_empty() else self.content_hash()

    def content_hash(self) -> str:
        """Stable short hash of the schedule (cache keys, labels, docs)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """Multi-line human-readable summary for CLI output."""
        if self.is_empty():
            return "empty plan (no faults)"

        def window(entry) -> str:
            end = "forever" if entry.end is None else str(entry.end)
            return f"cycles [{entry.start}, {end})"

        def scope(node: Optional[int]) -> str:
            return "all nodes" if node is None else f"node {node}"

        lines = []
        if self.label:
            lines.append(f"plan {self.label!r} (hash {self.content_hash()})")
        for entry in self.lane_faults:
            lines.append(
                f"dead {entry.lane} lane at node {entry.node}, {window(entry)}"
            )
        for entry in self.receiver_faults:
            lines.append(
                f"dead {entry.lane} receiver {entry.receiver} at node "
                f"{entry.node}, {window(entry)}"
            )
        for entry in self.droops:
            lines.append(
                f"thermal droop {entry.droop_db:g} dB at {scope(entry.node)}, "
                f"{window(entry)}"
            )
        for entry in self.bursts:
            lane = entry.lane or "both lanes"
            lines.append(
                f"error burst rate {entry.rate:g} on {lane} at "
                f"{scope(entry.node)}, {window(entry)}"
            )
        for entry in self.confirmation_drops:
            lines.append(
                f"confirmation drops rate {entry.rate:g} for "
                f"{scope(entry.node)}, {window(entry)}"
            )
        if self.giveup_retries is not None:
            lines.append(f"senders give up after {self.giveup_retries} retries")
        return "\n".join(lines)
