"""A hierarchical, snapshot-able metrics registry with JSON/CSV export.

The simulator's subsystems each keep their own
:class:`~repro.util.stats.StatGroup` tree (the interconnect's lane
counters, sixteen L1 controllers, sixteen directory slices, the memory
controllers).  A :class:`MetricsRegistry` *mounts* those live trees at
dotted paths — plus scalar gauges for values that are not stat objects
(cycle counts, confirmation-channel totals) — and renders the whole
hierarchy as one deterministic snapshot:

>>> from repro.util.stats import StatGroup
>>> reg = MetricsRegistry("demo")
>>> g = StatGroup("net"); g.counter("sent").add(3)
>>> reg.mount("network", g)
>>> reg.gauge("run.cycles", 2500)
>>> reg.snapshot()
{'network': {'sent': 3}, 'run': {'cycles': 2500}}

Snapshots are plain nested dicts (counters -> int, latency stats ->
their ``summary()`` dict, histograms -> count + fractions), so they
serialize canonically: :meth:`to_json` emits sorted-key JSON and
:meth:`to_csv` a flat ``metric,value`` table whose row order is the
sorted dotted path.  Two runs with identical behaviour therefore
export byte-identical files — the property the golden-snapshot tests
(``tests/cmp/test_golden.py``) and the sweep metric archives
(``run_sweep(metrics_path=...)``) rely on.

Mounting is by reference: the registry holds the live objects and
every :meth:`snapshot` call re-reads them, so one registry built at
system construction stays valid for the lifetime of the run.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional, Union

from repro.util.stats import StatGroup

__all__ = ["MetricsRegistry"]

#: A gauge is a plain value or a zero-argument callable read at
#: snapshot time (for values that keep changing, e.g. the cycle count).
GaugeSource = Union[int, float, str, Callable[[], Any]]


def _split(path: str) -> list[str]:
    parts = [part for part in path.split(".") if part]
    if not parts:
        raise ValueError(f"empty metric path: {path!r}")
    return parts


class MetricsRegistry:
    """Mount point for live stat trees and gauges; snapshot on demand."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._groups: dict[str, StatGroup] = {}
        self._gauges: dict[str, GaugeSource] = {}

    # -- registration --------------------------------------------------

    def mount(self, path: str, group: StatGroup) -> None:
        """Attach a live :class:`StatGroup` subtree at ``path``."""
        _split(path)  # validates
        if path in self._groups:
            raise ValueError(f"path already mounted: {path!r}")
        self._groups[path] = group

    def gauge(self, path: str, source: GaugeSource) -> None:
        """Attach a scalar (or zero-arg callable) at ``path``."""
        _split(path)
        if path in self._gauges:
            raise ValueError(f"gauge already registered: {path!r}")
        self._gauges[path] = source

    @property
    def paths(self) -> list[str]:
        """Every mounted path, sorted (groups and gauges)."""
        return sorted([*self._groups, *self._gauges])

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """The full hierarchy as one nested dict, re-read from live state."""
        out: dict = {}
        for path in sorted(self._groups):
            self._insert(out, path, self._groups[path].as_dict())
        for path in sorted(self._gauges):
            source = self._gauges[path]
            self._insert(out, path, source() if callable(source) else source)
        return out

    @staticmethod
    def _insert(tree: dict, path: str, value: Any) -> None:
        parts = _split(path)
        node = tree
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise ValueError(f"path collision under {path!r}")
        if parts[-1] in node:
            raise ValueError(f"path collision at {path!r}")
        node[parts[-1]] = value

    def flatten(self, snapshot: Optional[dict] = None) -> dict[str, Any]:
        """Dotted-path -> scalar view of a snapshot (lists get ``[i]``)."""
        flat: dict[str, Any] = {}

        def walk(prefix: str, value: Any) -> None:
            if isinstance(value, dict):
                for key in sorted(value):
                    walk(f"{prefix}.{key}" if prefix else str(key), value[key])
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    walk(f"{prefix}[{index}]", item)
            else:
                flat[prefix] = value

        walk("", self.snapshot() if snapshot is None else snapshot)
        return flat

    # -- export --------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON of the snapshot (sorted keys, trailing newline)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        """``metric,value`` rows, sorted by dotted path."""
        lines = ["metric,value"]
        for path, value in sorted(self.flatten().items()):
            lines.append(f"{path},{value}")
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        """Write the snapshot to ``path``; format chosen by suffix.

        ``.csv`` (matched case-insensitively, so ``.CSV``/``.Csv`` work
        too) writes the flat table, anything else canonical JSON.
        Before the case-insensitive dispatch, an upper-cased ``.CSV``
        silently fell through to JSON — with the old behaviour a
        ``metrics.CSV`` file held a JSON document.
        """
        is_csv = str(path).lower().endswith(".csv")
        text = self.to_csv() if is_csv else self.to_json(indent=1)
        with open(path, "w") as handle:
            handle.write(text)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({self.name}: {len(self._groups)} groups, "
            f"{len(self._gauges)} gauges)"
        )
