"""Invariant and anomaly watchdogs over the timeline and live system.

Simulation bugs and injected faults share a failure vocabulary:
progress stops, retries spin without deliveries, counters leak, or the
message ledger stops balancing.  The detectors here turn those shapes
into structured :class:`HealthEvent` records:

* **starvation** — zero instruction retirements across ``K``
  consecutive windows (livelock, a dead lane starving the cores, a
  scheduling bug).
* **backoff_storm** — either the measured per-node-slot collision rate
  rises above the Fig-3 closed-form band
  (:func:`repro.core.analytical.collision_probability`, with a margin
  and a minimum-event floor so single-collision noise in quiet windows
  never alarms), or packets sit outstanding across ``K`` consecutive
  zero-delivery windows — retransmission/backoff spinning without
  progress.
* **counter_leak** — the FSOI O(1) in-flight lane counters disagree
  with a recount of the lane queues and retransmission lists, or any
  stat counter has gone negative.
* **conservation** — per-lane transmission fates stop balancing
  (``transmissions >= delivered + collided + corrupted (+ fault
  fates)``, with equality once the network drains), or deliveries
  exceed sends — the end-to-end no-silent-loss law from
  ``tests/core/test_metric_conservation.py`` as a runtime check.

The watchdogs are pure readers: they never mutate simulator state, so
checking health cannot perturb a run.  ``repro run --health`` prints
the report, ``--strict-health`` fails the run (:class:`HealthError`),
and the fault-injection suite cross-checks both directions — injected
faults must trip detectors, clean runs must not
(``tests/obs/test_health.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

__all__ = [
    "HealthConfig",
    "HealthError",
    "HealthEvent",
    "check_health",
    "detect_backoff_storm",
    "detect_conservation",
    "detect_counter_leak",
    "detect_starvation",
    "render_health",
]


@dataclass(frozen=True)
class HealthEvent:
    """One watchdog finding.

    ``detector`` names the watchdog, ``severity`` is ``"warning"`` or
    ``"critical"``, ``cycle`` anchors the finding in simulated time
    (the end of the offending window, or the run end for end-state
    invariants), and ``data`` carries the detector-specific evidence.
    """

    detector: str
    severity: str
    cycle: int
    message: str
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "cycle": self.cycle,
            "message": self.message,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class HealthConfig:
    """Detector thresholds (defaults tuned on the seeded 16-node apps)."""

    #: Consecutive zero-retirement windows before starvation fires.
    starvation_windows: int = 3
    #: Consecutive zero-delivery windows with a positive outstanding
    #: backlog before the backoff-storm (retry-stall) facet fires.
    storm_windows: int = 3
    #: Measured collision rate must exceed the closed form by this
    #: factor before the band facet fires.
    collision_margin: float = 3.0
    #: ... and the window must hold at least this many collision
    #: events (quiet windows produce 1-3 event noise spikes).
    min_collision_events: int = 10
    #: Leading windows exempt from the band facet: the cold-start
    #: burst (every node injecting its first requests on the same
    #: cycle) is *correlated* traffic, legitimately above the
    #: independent-Bernoulli closed form.
    warmup_windows: int = 1


class HealthError(RuntimeError):
    """Raised under ``--strict-health`` when any detector fired."""

    def __init__(self, events: Sequence[HealthEvent]):
        self.events = list(events)
        super().__init__(
            f"{len(self.events)} health event(s): "
            + "; ".join(e.message for e in self.events[:3])
            + ("; ..." if len(self.events) > 3 else "")
        )


# -- timeline access -------------------------------------------------------


def _series(timeline: Any, path: str) -> Optional[np.ndarray]:
    """Per-window deltas for ``path``; None when it was not sampled.

    Accepts a live :class:`~repro.obs.timeline.TimelineCollector` or
    the dict form :func:`~repro.obs.timeline.load_timeline_jsonl`
    returns, so archived timelines get the same watchdogs.
    """
    if isinstance(timeline, dict):
        paths = timeline["meta"]["paths"]
        if path not in paths:
            return None
        column = paths.index(path)
        rows = np.asarray(timeline["deltas"], dtype=np.float64)
        if rows.size == 0:
            return np.zeros(0)
        return rows[:, column]
    try:
        return timeline.series(path)
    except KeyError:
        return None


def _cycles(timeline: Any) -> np.ndarray:
    if isinstance(timeline, dict):
        return np.asarray(timeline["cycles"], dtype=np.int64)
    return timeline.cycles()


def _runs_of(mask: np.ndarray, min_len: int) -> list[tuple[int, int]]:
    """Maximal ``[start, end)`` index runs of True at least min_len long."""
    runs: list[tuple[int, int]] = []
    start: Optional[int] = None
    for index, flag in enumerate(mask):
        if flag and start is None:
            start = index
        elif not flag and start is not None:
            if index - start >= min_len:
                runs.append((start, index))
            start = None
    if start is not None and len(mask) - start >= min_len:
        runs.append((start, len(mask)))
    return runs


# -- windowed detectors ----------------------------------------------------


def detect_starvation(
    timeline: Any, config: HealthConfig = HealthConfig()
) -> list[HealthEvent]:
    """Livelock/starvation: K consecutive windows of zero progress.

    A starved window retires no instructions *and* delivers no packets.
    Both conditions matter: a straggler core blocked on a long memory
    miss chain parks every other core at a barrier for hundreds of
    cycles — zero retirements — but its miss traffic keeps deliveries
    non-zero, so legitimate sync phases never alarm (measured across
    every app x network x seed in the clean-run suite).  One event per
    maximal starved stretch, anchored at the cycle where it ended.
    """
    instructions = _series(timeline, "run.instructions")
    if instructions is None or len(instructions) == 0:
        return []
    starved = instructions == 0
    delivered = _series(timeline, "network.packets_delivered")
    if delivered is not None:
        starved &= delivered == 0
    cycles = _cycles(timeline)
    events = []
    for start, end in _runs_of(starved, config.starvation_windows):
        first = int(cycles[start - 1]) if start else None
        events.append(
            HealthEvent(
                detector="starvation",
                severity="critical",
                cycle=int(cycles[end - 1]),
                message=(
                    f"no retirements and no deliveries across {end - start} "
                    f"consecutive windows (cycles "
                    f"{first if first is not None else 'start'}"
                    f"..{int(cycles[end - 1])})"
                ),
                data={"windows": int(end - start), "from_cycle": first},
            )
        )
    return events


def detect_backoff_storm(
    timeline: Any,
    config: HealthConfig = HealthConfig(),
    *,
    num_nodes: Optional[int] = None,
    receivers: Any = 2,
) -> list[HealthEvent]:
    """Collision/retry storms, two facets.

    **Band**: a window's measured collisions per node-slot exceed the
    Fig-3 closed form for its measured transmission probability by
    ``collision_margin``x (with at least ``min_collision_events``
    events, so quiet-window shot noise never alarms).  Correlated
    retries are exactly what pushes a slotted channel above the
    independent-Bernoulli band.

    **Retry stall**: the packet ledger shows an outstanding backlog
    (``sent > delivered + gave_up``) across ``storm_windows``
    consecutive windows with zero deliveries — packets stuck in
    backoff/retransmission making no progress (a dark lane, a runaway
    backoff window).
    """
    events: list[HealthEvent] = []
    cycles = _cycles(timeline)
    if num_nodes is None:
        meta = timeline["meta"] if isinstance(timeline, dict) else timeline.meta
        num_nodes = int(meta.get("num_nodes", 0)) or None

    # Facet 1: collision rate above the closed-form band (per lane).
    if num_nodes:
        from repro.core.analytical import collision_probability

        for lane in ("meta", "data"):
            lane_receivers = (
                receivers.get(lane, 2)
                if isinstance(receivers, dict)
                else receivers
            )
            tx = _series(timeline, f"network.{lane}.transmissions")
            coll = _series(timeline, f"network.{lane}.collision_events")
            slots = _series(timeline, f"network.{lane}.slots_elapsed")
            if tx is None or coll is None or slots is None:
                continue
            for index in range(config.warmup_windows, len(cycles)):
                node_slots = slots[index] * num_nodes
                if (
                    node_slots <= 0
                    or coll[index] < config.min_collision_events
                ):
                    continue
                p = tx[index] / node_slots
                expected = collision_probability(
                    p, num_nodes=num_nodes, receivers=lane_receivers
                )
                measured = coll[index] / node_slots
                if measured > config.collision_margin * max(expected, 1e-12):
                    events.append(
                        HealthEvent(
                            detector="backoff_storm",
                            severity="warning",
                            cycle=int(cycles[index]),
                            message=(
                                f"{lane} collision rate "
                                f"{measured:.3g}/node-slot exceeds "
                                f"{config.collision_margin:g}x the Fig-3 "
                                f"band ({expected:.3g} at p={p:.3g})"
                            ),
                            data={
                                "lane": lane,
                                "measured": float(measured),
                                "expected": float(expected),
                                "tx_probability": float(p),
                                "collision_events": int(coll[index]),
                            },
                        )
                    )

    # Facet 2: outstanding packets starved of delivery.
    sent = _series(timeline, "network.packets_sent")
    delivered = _series(timeline, "network.packets_delivered")
    if sent is not None and delivered is not None and len(sent):
        gave_up = _series(timeline, "network.fault.gave_up_lost")
        lost = np.cumsum(gave_up) if gave_up is not None else 0.0
        backlog = np.cumsum(sent) - np.cumsum(delivered) - lost
        stalled = (delivered == 0) & (backlog > 0)
        for start, end in _runs_of(stalled, config.storm_windows):
            events.append(
                HealthEvent(
                    detector="backoff_storm",
                    severity="critical",
                    cycle=int(cycles[end - 1]),
                    message=(
                        f"{int(backlog[end - 1])} packet(s) outstanding "
                        f"with zero deliveries across {end - start} "
                        f"consecutive windows"
                    ),
                    data={
                        "windows": int(end - start),
                        "backlog": int(backlog[end - 1]),
                    },
                )
            )
    return events


# -- end-state invariants --------------------------------------------------


def _lane_counter_dicts(network: Any) -> dict[str, dict[str, int]]:
    """Per-lane counter values of an FSOI network, plus fault fates."""
    out: dict[str, dict[str, int]] = {}
    for lane, counters in network._lane_stats.items():
        values = {key: int(c) for key, c in counters.items()}
        if network._injector is not None:
            values.update(
                (key, int(c))
                for key, c in network._fault_lane_stats[lane].items()
            )
        out[lane.value] = values
    return out


def detect_counter_leak(system: Any) -> list[HealthEvent]:
    """O(1) counter vs structure cross-checks (lane-counter leaks).

    FSOI mirrors each lane's queued + backed-off packet count in
    ``_lane_pending`` so ``quiescent()`` and the fast-forward horizon
    are O(1); the mirror must always equal the recounted queue and
    retransmission-list sizes.  Any negative stat counter anywhere in
    the metrics tree is likewise a leak (a decrement without its
    increment).
    """
    events: list[HealthEvent] = []
    cycle = int(system.cycle)
    network = system.network
    pending = getattr(network, "_lane_pending", None)
    if pending is not None:
        for lane, count in pending.items():
            actual = sum(
                len(state.queue) + len(state.retx)
                for state in network._state[lane]
            )
            if count != actual:
                events.append(
                    HealthEvent(
                        detector="counter_leak",
                        severity="critical",
                        cycle=cycle,
                        message=(
                            f"{lane.value} in-flight counter holds {count} "
                            f"but the lane structures hold {actual}"
                        ),
                        data={
                            "lane": lane.value,
                            "counter": int(count),
                            "recounted": int(actual),
                        },
                    )
                )
    flat = system.metrics_registry().flatten()
    for path, value in flat.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if value < 0:
                events.append(
                    HealthEvent(
                        detector="counter_leak",
                        severity="critical",
                        cycle=cycle,
                        message=f"negative counter {path} = {value}",
                        data={"path": path, "value": value},
                    )
                )
    return events


def detect_conservation(system: Any) -> list[HealthEvent]:
    """End-to-end message conservation.

    Every network: deliveries never exceed sends, and a drained
    network must have delivered (or provably given up on) everything.
    FSOI additionally balances per-lane transmission fates —
    delivered + collided + corrupted (+ fault losses) never exceed
    transmissions, with equality once the lane drains.
    """
    events: list[HealthEvent] = []
    cycle = int(system.cycle)
    network = system.network
    stats = network.stats
    sent, delivered = int(stats.sent), int(stats.delivered)
    if delivered > sent:
        events.append(
            HealthEvent(
                detector="conservation",
                severity="critical",
                cycle=cycle,
                message=f"delivered {delivered} packets but only {sent} sent",
                data={"sent": sent, "delivered": delivered},
            )
        )
    if hasattr(network, "_lane_stats"):
        quiescent = network.quiescent()
        for lane, values in _lane_counter_dicts(network).items():
            tx = values["tx"]
            explained = (
                values["delivered"]
                + values["collided_tx"]
                + values["error_tx"]
                + values.get("fault_lost", 0)
                + values.get("injected_corrupt", 0)
                + values.get("duplicate_rx", 0)
            )
            broken = explained > tx or (quiescent and explained != tx)
            if broken:
                events.append(
                    HealthEvent(
                        detector="conservation",
                        severity="critical",
                        cycle=cycle,
                        message=(
                            f"{lane} transmission ledger broken: "
                            f"{tx} transmissions vs {explained} explained"
                            f"{' (drained)' if quiescent else ''}"
                        ),
                        data={
                            "lane": lane,
                            "transmissions": tx,
                            "explained": explained,
                            "quiescent": quiescent,
                        },
                    )
                )
    return events


# -- the monitor entry point ----------------------------------------------


def check_health(
    system: Any = None,
    timeline: Any = None,
    config: HealthConfig = HealthConfig(),
) -> list[HealthEvent]:
    """Run every applicable detector; events sorted by (cycle, detector).

    ``system`` enables the end-state invariants, ``timeline`` (a live
    collector or a loaded JSONL dict) the windowed detectors; either
    may be omitted.
    """
    events: list[HealthEvent] = []
    if timeline is not None:
        num_nodes = None
        receivers: Any = 2
        if system is not None:
            num_nodes = system.config.num_nodes
            lanes = getattr(getattr(system.network, "config", None), "lanes", None)
            if lanes is not None:
                receivers = {
                    "meta": lanes.meta_receivers,
                    "data": lanes.data_receivers,
                }
        events.extend(detect_starvation(timeline, config))
        events.extend(
            detect_backoff_storm(
                timeline, config, num_nodes=num_nodes, receivers=receivers
            )
        )
    if system is not None:
        events.extend(detect_counter_leak(system))
        events.extend(detect_conservation(system))
    return sorted(events, key=lambda e: (e.cycle, e.detector, e.message))


def render_health(events: Sequence[HealthEvent]) -> str:
    """Human-readable report (``repro run --health`` / ``repro top``)."""
    if not events:
        return "health: OK (no events)\n"
    lines = [f"health: {len(events)} event(s)"]
    for event in events:
        lines.append(
            f"  [{event.severity:8s}] cycle {event.cycle:>8d} "
            f"{event.detector}: {event.message}"
        )
    return "\n".join(lines) + "\n"
