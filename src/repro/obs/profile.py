"""Lightweight per-phase wall-time attribution for the cycle loop.

A :class:`PhaseProfiler` accumulates wall seconds against named phases
("calendar", "memory", "network", "cores", ...).  The cycle loop pays
for timing only when profiling is on: :meth:`repro.cmp.CmpSystem.tick`
checks ``PROFILER.enabled`` once per cycle and dispatches to an
instrumented tick variant, so the common (disabled) path executes the
exact same code it always did.

Attribution is explicit (``add(phase, seconds)`` between two
``perf_counter`` reads) rather than context-manager based — a ``with``
block per subsystem per cycle would cost more than some of the
subsystems it measures.

``repro profile`` renders the report::

    phase       seconds   share
    network       0.412   41.2%
    cores         0.388   38.8%
    ...
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PROFILER", "PhaseProfiler", "profiling"]


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self.enabled = False
        self._seconds: dict[str, float] = {}
        self._started = 0.0
        self._wall = 0.0
        self.cycles = 0
        self.skipped = 0

    # -- accumulation --------------------------------------------------

    def add(self, phase: str, seconds: float) -> None:
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds

    def cycle_done(self) -> None:
        """Count one completed (executed) cycle."""
        self.cycles += 1

    def skip(self, cycles: int) -> None:
        """Count ``cycles`` fast-forwarded past without executing."""
        self.skipped += cycles

    @property
    def total_cycles(self) -> int:
        """Simulated cycles: executed plus fast-forwarded."""
        return self.cycles + self.skipped

    def reset(self) -> None:
        self._seconds.clear()
        self.cycles = 0
        self.skipped = 0
        self._wall = 0.0
        self._started = time.perf_counter()

    def stop(self) -> None:
        """Freeze the total wall-clock window (called on disable)."""
        self._wall = time.perf_counter() - self._started

    def phase_seconds(self, phase: str) -> float:
        """Seconds accumulated so far against ``phase`` (0.0 if none).

        The cycle loop uses this to *re-attribute* nested work: coherence
        dispatch runs inside the calendar and network windows, accrues
        against ``"coherence"`` at the dispatch site, and the enclosing
        window subtracts the delta so no wall time is counted twice.
        """
        return self._seconds.get(phase, 0.0)

    # -- reporting -----------------------------------------------------

    @property
    def attributed_seconds(self) -> float:
        return sum(self._seconds.values())

    @property
    def wall_seconds(self) -> float:
        if self._wall:
            return self._wall
        return time.perf_counter() - self._started

    def report(self) -> dict[str, dict[str, float]]:
        """Per-phase seconds and share of the attributed total."""
        total = self.attributed_seconds
        return {
            phase: {
                "seconds": seconds,
                "share": seconds / total if total else 0.0,
            }
            for phase, seconds in sorted(
                self._seconds.items(), key=lambda kv: -kv[1]
            )
        }

    def render(self) -> str:
        """The human-readable table ``repro profile`` prints."""
        lines = [f"{'phase':<14} {'seconds':>9} {'share':>7}"]
        for phase, row in self.report().items():
            lines.append(
                f"{phase:<14} {row['seconds']:>9.3f} {100 * row['share']:>6.1f}%"
            )
        total = self.total_cycles
        lines.append(
            f"{'attributed':<14} {self.attributed_seconds:>9.3f} "
            f"{'':>6} (wall {self.wall_seconds:.3f}s"
            + (
                f", {total / self.wall_seconds:,.0f} cycles/s"
                if total and self.wall_seconds > 0
                else ""
            )
            + (
                f", {100 * self.skipped / total:.1f}% fast-forwarded"
                if self.skipped
                else ""
            )
            + ")"
        )
        return "\n".join(lines)


#: The process-global profiler the cycle loop guards on.
PROFILER = PhaseProfiler()


@contextmanager
def profiling():
    """Enable the global profiler for a block; yields it (reset first).

    On exit the profiler is disabled and its wall-clock window frozen,
    but the accumulated phase times remain readable::

        with profiling() as p:
            CmpSystem(config).run(cycles)
        print(p.render())
    """
    previous = PROFILER.enabled
    PROFILER.reset()
    PROFILER.enabled = True
    try:
        yield PROFILER
    finally:
        PROFILER.enabled = previous
        PROFILER.stop()
