"""Windowed time-series telemetry over the metrics registry.

The registry (:mod:`repro.obs.registry`) answers "what happened over
the whole run"; the timeline answers "when".  Every ``window`` cycles
the collector re-reads a configurable set of flattened registry paths
and stores the **per-window deltas** in columnar numpy ring buffers —
trajectories of lane utilization, collision counts, retirements and
sync progress at bounded memory cost, cheap enough to leave on for
multi-hour sweeps.

The design follows the other two ``repro.obs`` facilities exactly:

* **Zero overhead when disabled.**  The only hot-loop cost is the
  single ``if TIMELINE.enabled:`` guard in ``CmpSystem.tick``
  (``tests/obs/test_overhead.py`` pins the budget).
* **Non-perturbing when enabled.**  Sampling only *reads* simulator
  state — no RNG draws, no scheduling changes — so a timelined run is
  bit-identical to a plain one.  Samples are taken at the *start* of
  each window-boundary tick (cycle ``k*window`` sees state after
  cycles ``< k*window``), which both engine families
  (``vectorized=True/False``) reach with identical counter values;
  the exported JSONL is therefore byte-identical across engines and
  across repeated runs of the same seed
  (``tests/obs/test_timeline.py``).
* **Fast-forward aware.**  ``CmpSystem._next_event`` caps its jump
  horizon at the collector's next due boundary, so window samples are
  taken at the same cycles whether or not the loop fast-forwards.
  Only the ``loop`` executed/skipped bookkeeping differs — as
  documented in :class:`repro.cmp.results.CmpResults`.

Exports: JSONL (one meta line + one line per window, canonical
sorted-key JSON), chrome://tracing counter events (``ph: "C"``) that
merge into existing trace files, and OpenMetrics text exposition
(linted by :func:`validate_openmetrics`).  ``docs/observability.md``
has the schema tables.
"""

from __future__ import annotations

import fnmatch
import json
import re
from contextlib import contextmanager
from typing import Any, Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "DEFAULT_TIMELINE_PATHS",
    "TIMELINE",
    "TimelineCollector",
    "load_timeline_jsonl",
    "timelining",
    "validate_openmetrics",
    "window_deltas",
]

#: Default sampled paths: fnmatch patterns over the *flattened*
#: registry (``MetricsRegistry.flatten`` keys).  The defaults are
#: system-level monotone counters so the column count is independent
#: of node count; per-node series (``l1.*.stalls``,
#: ``directory.*.queued``, ...) opt in via ``timelining(paths=...)``.
#: ``profile.*`` selects per-phase wall-clock seconds when the
#: profiler is live (wall-clock columns are excluded from the
#: byte-identical determinism guarantee, of course).
DEFAULT_TIMELINE_PATHS = (
    "run.cycles",
    "run.instructions",
    "network.packets_sent",
    "network.packets_delivered",
    "network.send_refused",
    "network.bits_sent",
    "network.meta.transmissions",
    "network.meta.collided_transmissions",
    "network.meta.collision_events",
    "network.meta.delivered",
    "network.meta.slots_elapsed",
    "network.data.transmissions",
    "network.data.collided_transmissions",
    "network.data.collision_events",
    "network.data.delivered",
    "network.data.slots_elapsed",
    "network.fault.*",
    "sync.barriers_completed",
    "sync.lock_acquisitions",
    "sync.lock_retries",
    "profile.*",
)

#: Prefix for the synthetic profiler columns ("profile.<phase>.seconds").
_PROFILE_PREFIX = "profile."


def window_deltas(prev: Sequence[float], cur: Sequence[float]) -> np.ndarray:
    """Per-window delta vector ``cur - prev`` (float64).

    The collector's single arithmetic primitive, kept free-standing so
    its algebra is property-testable: for monotone counter series no
    delta is negative, and deltas telescope — the sum over consecutive
    windows equals ``final - base`` exactly (float64 integers are
    exact up to 2**53, far beyond any counter here).
    """
    prev_arr = np.asarray(prev, dtype=np.float64)
    cur_arr = np.asarray(cur, dtype=np.float64)
    if prev_arr.shape != cur_arr.shape:
        raise ValueError(
            f"shape mismatch: prev {prev_arr.shape} vs cur {cur_arr.shape}"
        )
    return cur_arr - prev_arr


def _num(value: float) -> Any:
    """Canonical JSON number: integral floats render as ints."""
    if float(value).is_integer():
        return int(value)
    return float(value)


class TimelineCollector:
    """Columnar per-window delta sampler over a live metrics registry.

    One process-global instance (:data:`TIMELINE`) guarded exactly like
    :data:`~repro.obs.trace.TRACE`.  The collector binds to the first
    :class:`~repro.cmp.CmpSystem` that ticks while it is enabled
    (building that system's registry once); ticks from any other
    system are ignored, mirroring the tracer's one-run-at-a-time
    contract.

    Storage is a ring: ``capacity`` windows of deltas are retained;
    older windows are dropped (counted in :attr:`dropped_windows`) but
    their column sums are folded into :meth:`totals`, so cumulative
    counters and the conservation invariant survive the drop.
    """

    def __init__(
        self,
        window: int = 100,
        paths: Optional[Iterable[str]] = None,
        capacity: int = 4096,
    ):
        self.enabled = False
        self.configure(window=window, paths=paths, capacity=capacity)

    # -- configuration ---------------------------------------------------

    def configure(
        self,
        window: int = 100,
        paths: Optional[Iterable[str]] = None,
        capacity: int = 4096,
    ) -> None:
        """Set window/paths/capacity and drop any previous binding."""
        if window < 1:
            raise ValueError(f"timeline window must be >= 1: {window}")
        if capacity < 1:
            raise ValueError(f"timeline capacity must be >= 1: {capacity}")
        self.window = window
        self.patterns = tuple(paths) if paths else DEFAULT_TIMELINE_PATHS
        self.capacity = capacity
        self.reset()

    def reset(self) -> None:
        """Forget the bound system and every collected window."""
        self._system: Any = None
        self._registry: Any = None
        self._registry_paths: list[str] = []
        self._profile_paths: list[str] = []
        self._columns: Optional[list[str]] = None  # frozen at first sample
        self._prev: Optional[np.ndarray] = None
        self._base: Optional[np.ndarray] = None
        self._next_due = self.window
        self._last_sample_cycle: Optional[int] = None
        self._cycles = np.zeros(self.capacity, dtype=np.int64)
        self._rows: Optional[np.ndarray] = None
        self._start = 0
        self._count = 0
        self.dropped_windows = 0
        self._dropped_sum: Optional[np.ndarray] = None
        self.meta: dict[str, Any] = {}

    # -- binding and sampling (called from CmpSystem, guarded) -----------

    def _matches(self, path: str) -> bool:
        return any(fnmatch.fnmatch(path, pat) for pat in self.patterns)

    def _bind(self, system: Any) -> None:
        self._system = system
        self._registry = system.metrics_registry()
        flat = self._registry.flatten()
        self._registry_paths = [
            key
            for key in sorted(flat)
            if isinstance(flat[key], (int, float))
            and not isinstance(flat[key], bool)
            and self._matches(key)
        ]
        cycle = int(system.cycle)
        self._next_due = (cycle // self.window + 1) * self.window
        config = system.config
        self.meta = {
            "app": system.app_label,
            "network": config.network,
            "num_nodes": config.num_nodes,
            "seed": config.seed,
        }
        # The registry part of the delta baseline; profiler columns join
        # (baseline zero) when the column set freezes at the first
        # sample — the profiler only has phases once the loop has run.
        self._base = np.array(
            [float(flat[key]) for key in self._registry_paths],
            dtype=np.float64,
        )

    def _freeze_columns(self) -> None:
        from repro.obs.profile import PROFILER

        if PROFILER.enabled:
            self._profile_paths = [
                f"{_PROFILE_PREFIX}{phase}.seconds"
                for phase in sorted(PROFILER._seconds)
                if self._matches(f"{_PROFILE_PREFIX}{phase}.seconds")
            ]
        self._columns = [*self._registry_paths, *self._profile_paths]
        ncols = len(self._columns)
        assert self._base is not None
        self._base = np.concatenate(
            [self._base, np.zeros(len(self._profile_paths))]
        )
        self._prev = self._base.copy()
        self._rows = np.zeros((self.capacity, ncols), dtype=np.float64)
        self._dropped_sum = np.zeros(ncols, dtype=np.float64)

    def _read_values(self) -> np.ndarray:
        flat = self._registry.flatten()
        values = [float(flat[key]) for key in self._registry_paths]
        if self._profile_paths:
            from repro.obs.profile import PROFILER

            seconds = PROFILER._seconds
            strip = len(_PROFILE_PREFIX)
            values.extend(
                float(seconds.get(path[strip:-8], 0.0))
                for path in self._profile_paths  # "profile.<phase>.seconds"
            )
        return np.array(values, dtype=np.float64)

    def _sample(self, cycle: int) -> None:
        if self._columns is None:
            self._freeze_columns()
        if cycle == self._last_sample_cycle:
            return
        values = self._read_values()
        assert self._prev is not None and self._rows is not None
        deltas = window_deltas(self._prev, values)
        self._prev = values
        self._last_sample_cycle = cycle
        if self._count == self.capacity:
            oldest = self._start
            assert self._dropped_sum is not None
            self._dropped_sum += self._rows[oldest]
            self._start = (oldest + 1) % self.capacity
            self._count -= 1
            self.dropped_windows += 1
        pos = (self._start + self._count) % self.capacity
        self._cycles[pos] = cycle
        self._rows[pos] = deltas
        self._count += 1

    def on_tick(self, system: Any) -> None:
        """Window-boundary sampling hook (call behind an enabled guard).

        Runs at the start of every tick; samples when the cycle has
        reached the next window boundary.  Read-only with respect to
        the simulation — the registry snapshot settles lazy columnar
        ledgers, which is an accounting materialization the engines
        already permit between ticks.
        """
        if self._system is None:
            self._bind(system)
        elif system is not self._system:
            return
        cycle = system.cycle
        if cycle >= self._next_due:
            self._sample(cycle)
            while self._next_due <= cycle:
                self._next_due += self.window

    def due_cycle(self, system: Any) -> Optional[int]:
        """Next boundary for ``system`` — the fast-forward horizon cap.

        ``None`` when the collector is bound to a different system (its
        jumps are then unconstrained, as if the timeline were off).
        """
        if self._system is None:
            self._bind(system)
        elif system is not self._system:
            return None
        return self._next_due

    def on_run_end(self, system: Any) -> None:
        """Record the final (possibly partial) window at run end.

        Keeps the conservation invariant exact: after this, column
        totals equal the final registry snapshot minus the bind-time
        baseline even when the run length is not a window multiple.
        """
        if self._system is None or system is not self._system:
            return
        self._sample(int(system.cycle))

    # -- read access -----------------------------------------------------

    @property
    def paths(self) -> list[str]:
        """The sampled column paths, in column order."""
        if self._columns is not None:
            return list(self._columns)
        return list(self._registry_paths)

    def __len__(self) -> int:
        return self._count

    def cycles(self) -> np.ndarray:
        """Window-end cycles of the retained windows, chronological."""
        idx = (self._start + np.arange(self._count)) % self.capacity
        return self._cycles[idx].copy()

    def matrix(self) -> np.ndarray:
        """Retained per-window deltas, shape ``(windows, columns)``."""
        if self._rows is None:
            return np.zeros((0, len(self.paths)), dtype=np.float64)
        idx = (self._start + np.arange(self._count)) % self.capacity
        return self._rows[idx].copy()

    def series(self, path: str) -> np.ndarray:
        """One column's per-window deltas, chronological."""
        try:
            column = self.paths.index(path)
        except ValueError:
            raise KeyError(f"path not sampled: {path!r}") from None
        return self.matrix()[:, column]

    def cumulative(self, path: str) -> np.ndarray:
        """Cumulative value of ``path`` at each retained window end.

        Reconstructs the counter's trajectory: bind-time baseline plus
        dropped-window sums plus the running sum of retained deltas —
        so ``cumulative(p)[-1]`` equals the final registry value.
        """
        try:
            column = self.paths.index(path)
        except ValueError:
            raise KeyError(f"path not sampled: {path!r}") from None
        base = 0.0
        if self._base is not None:
            base = float(self._base[column])
        if self._dropped_sum is not None:
            base += float(self._dropped_sum[column])
        return base + np.cumsum(self.matrix()[:, column])

    def totals(self) -> dict[str, float]:
        """Cumulative per-path deltas since bind (drop-safe).

        ``base + dropped + retained`` — equal to the final registry
        snapshot minus the bind-time baseline, window drops included.
        """
        if self._rows is None:
            return {}
        assert self._dropped_sum is not None
        summed = self._dropped_sum + self.matrix().sum(axis=0)
        return dict(zip(self.paths, (float(v) for v in summed)))

    def latest_window(self) -> Optional[dict]:
        """The most recent window as ``{"cycle", "deltas": {path: v}}``.

        ``None`` before the first sample.  This is the payload the
        sweep heartbeat forwards so ``repro top`` can render live
        state without touching the collector's internals.
        """
        if self._count == 0:
            return None
        pos = (self._start + self._count - 1) % self.capacity
        assert self._rows is not None
        deltas = {
            path: _num(value)
            for path, value in zip(self.paths, self._rows[pos])
        }
        return {"cycle": int(self._cycles[pos]), "deltas": deltas}

    # -- exports ---------------------------------------------------------

    def meta_record(self) -> dict:
        """The JSONL meta line (also embedded in the OpenMetrics text)."""
        return {
            "type": "meta",
            "version": 1,
            "window": self.window,
            "paths": self.paths,
            "windows": self._count,
            "dropped_windows": self.dropped_windows,
            **self.meta,
        }

    def to_jsonl(self) -> str:
        """Canonical JSONL: one meta line, then one line per window.

        Sorted keys and integral-float normalization make the output
        byte-identical for byte-identical runs — the property the
        determinism suite pins across seeds and engine families.
        """
        lines = [json.dumps(self.meta_record(), sort_keys=True)]
        cycles = self.cycles()
        rows = self.matrix()
        for cycle, row in zip(cycles, rows):
            lines.append(
                json.dumps(
                    {
                        "type": "window",
                        "cycle": int(cycle),
                        "deltas": [_num(v) for v in row],
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the window count."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return self._count

    def counter_events(self) -> list[dict]:
        """chrome://tracing counter events (``ph: "C"``), one per
        window per path, mergeable into a trace-event JSONL/JSON file
        (``repro trace --timeline``).  Counter tracks render as
        stacked area charts under the spans in Perfetto.
        """
        events = []
        cycles = self.cycles()
        rows = self.matrix()
        for cycle, row in zip(cycles, rows):
            for path, value in zip(self.paths, row):
                events.append(
                    {
                        "name": path,
                        "cat": "timeline",
                        "ph": "C",
                        "ts": int(cycle),
                        "pid": 0,
                        "tid": "timeline",
                        "args": {"delta": _num(value)},
                    }
                )
        return events

    def to_openmetrics(self, prefix: str = "repro") -> str:
        """OpenMetrics text exposition of the cumulative totals.

        Counters (the registry's monotone totals since bind) carry the
        mandated ``_total`` suffix; collector state (window size,
        retained/dropped windows) exports as gauges.  Ends with the
        required ``# EOF`` terminator; :func:`validate_openmetrics`
        lints the result.
        """
        lines: list[str] = []
        totals = self.totals()
        for path in self.paths:
            name = f"{prefix}_" + re.sub(r"[^a-zA-Z0-9_]", "_", path)
            lines.append(f"# TYPE {name} counter")
            lines.append(
                f'{name}_total{{path="{path}"}} '
                f"{json.dumps(_num(totals[path]))}"
            )
        for gauge, value in (
            ("timeline_window_cycles", self.window),
            ("timeline_windows", self._count),
            ("timeline_dropped_windows", self.dropped_windows),
        ):
            name = f"{prefix}_{gauge}"
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write_openmetrics(self, path, prefix: str = "repro") -> int:
        """Write :meth:`to_openmetrics`; returns the sample count."""
        text = self.to_openmetrics(prefix=prefix)
        with open(path, "w") as handle:
            handle.write(text)
        return validate_openmetrics(text)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"TimelineCollector({state}, window={self.window}, "
            f"windows={self._count}, paths={len(self.paths)})"
        )


#: The process-global collector ``CmpSystem.tick`` guards on.
TIMELINE = TimelineCollector()


@contextmanager
def timelining(
    window: int = 100,
    paths: Optional[Iterable[str]] = None,
    capacity: int = 4096,
):
    """Enable the global timeline for a block.

    Entry reconfigures and clears :data:`TIMELINE` and switches it on;
    exit restores the previous enabled state but keeps the collected
    windows so they can still be exported::

        with timelining(window=100) as tl:
            CmpSystem(config).run(cycles)
        tl.write_jsonl("timeline.jsonl")

    Nested blocks are not supported (the inner block would clear the
    outer block's windows), mirroring :func:`~repro.obs.trace.tracing`.
    """
    previous_enabled = TIMELINE.enabled
    TIMELINE.configure(window=window, paths=paths, capacity=capacity)
    TIMELINE.enabled = True
    try:
        yield TIMELINE
    finally:
        TIMELINE.enabled = previous_enabled


# -- timeline JSONL loading (repro top --from, RunStore ingestion) ---------


def load_timeline_jsonl(path) -> dict:
    """Parse a timeline JSONL file into ``{"meta", "cycles", "deltas"}``.

    ``cycles`` is a list of window-end cycles and ``deltas`` a list of
    per-window value lists aligned with ``meta["paths"]``.  Raises
    ``ValueError`` on malformed files (missing meta line, ragged rows).
    """
    meta: Optional[dict] = None
    cycles: list[int] = []
    deltas: list[list[float]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "meta":
                if meta is not None:
                    raise ValueError(f"{path}:{lineno}: duplicate meta line")
                meta = record
            elif kind == "window":
                if meta is None:
                    raise ValueError(f"{path}:{lineno}: window before meta")
                row = record.get("deltas")
                if not isinstance(row, list) or len(row) != len(meta["paths"]):
                    raise ValueError(
                        f"{path}:{lineno}: expected {len(meta['paths'])} "
                        f"deltas, got {row!r}"
                    )
                cycles.append(int(record["cycle"]))
                deltas.append([float(v) for v in row])
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
    if meta is None:
        raise ValueError(f"{path}: no meta line")
    return {"meta": meta, "cycles": cycles, "deltas": deltas}


# -- OpenMetrics lint ------------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_LINE = re.compile(rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|"
                        r"histogram|summary|info|stateset|unknown)$")
_HELP_LINE = re.compile(rf"^# HELP ({_METRIC_NAME}) .*$")
_SAMPLE_LINE = re.compile(
    rf"^({_METRIC_NAME})(\{{[^{{}}]*\}})? (\S+)( \S+)?$"
)
#: Suffixes OpenMetrics allows a sample of a typed family to carry.
_FAMILY_SUFFIXES = ("_total", "_created", "_count", "_sum", "_bucket")


def validate_openmetrics(text: str) -> int:
    """Lint an OpenMetrics exposition; returns the number of samples.

    A deliberately dependency-free subset of the spec, strict about
    everything the exporter promises: a ``# EOF`` terminator with
    nothing after it, well-formed ``# TYPE``/``# HELP`` lines, sample
    names that resolve (with the standard suffixes) to a declared
    family, float-parsable values, and no duplicate TYPE declarations.
    Raises ``ValueError`` with the offending line number.
    """
    families: dict[str, str] = {}
    samples = 0
    seen_eof = False
    for lineno, line in enumerate(text.split("\n"), start=1):
        if seen_eof and line:
            raise ValueError(f"line {lineno}: content after # EOF")
        if not line:
            continue
        if line == "# EOF":
            seen_eof = True
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_LINE.match(line)
            if not match:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            name = match.group(1)
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            families[name] = match.group(2)
            continue
        if line.startswith("# HELP "):
            if not _HELP_LINE.match(line):
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment: {line!r}")
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name, value = match.group(1), match.group(3)
        family = name
        if family not in families:
            for suffix in _FAMILY_SUFFIXES:
                if name.endswith(suffix):
                    family = name[: -len(suffix)]
                    break
        if family not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value {value!r}"
                ) from None
        samples += 1
    if not seen_eof:
        raise ValueError("missing # EOF terminator")
    if samples == 0:
        raise ValueError("no samples")
    return samples
