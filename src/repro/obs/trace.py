"""Ring-buffered structured event tracing (chrome://tracing compatible).

The simulator's trace points all follow one pattern::

    from repro.obs.trace import TRACE
    ...
    if TRACE.enabled:
        TRACE.emit("collision", cat="fsoi", cycle=cycle, node=dst,
                   lane=lane.value, senders=[p.src for p in packets])

The ``if TRACE.enabled`` guard is the *entire* disabled-path cost: one
attribute load and a branch.  Tracing is therefore compiled into every
hot loop unconditionally; see ``tests/obs/test_overhead.py`` for the
micro-benchmark that keeps this promise honest.

Events live in a bounded ring (:class:`collections.deque` with
``maxlen``), so a trace of an arbitrarily long run costs bounded
memory; the oldest events are dropped and counted.  Export is JSONL —
one trace-event object per line — in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and Perfetto: instants carry
``ph: "i"``, spans ``ph: "X"`` with a ``dur``.  Cycle numbers map to
the ``ts`` (microsecond) axis one-to-one.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

__all__ = [
    "TRACE",
    "TraceEvent",
    "Tracer",
    "tracing",
    "validate_event",
    "validate_trace_file",
]

#: Fields every exported trace event must carry (trace-event format).
#: Note the simulation loop's fast-forward engine stays enabled under
#: tracing: a jump over idle cycles is recorded as one ``fast_forward``
#: span (cat "loop", ph "X", dur = cycles skipped) rather than being
#: inhibited, so traced runs remain cycle-identical to untraced ones.
REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")

#: Phases the exporters produce: instant events, complete spans, and
#: counter tracks ("C" — per-window timeline deltas merged in by
#: ``repro trace --timeline``; see repro.obs.timeline.counter_events).
VALID_PHASES = ("i", "X", "C")


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace event.

    ``cycle`` is the simulated cycle the event refers to (exported as
    the trace timestamp).  ``node`` / ``lane`` / ``packet`` are the
    filterable identity dimensions; whatever else a trace point wants
    to record rides in ``args``.
    """

    name: str
    cat: str
    cycle: int
    node: Optional[int] = None
    lane: Optional[str] = None
    packet: Optional[int] = None
    dur: Optional[int] = None      # span length in cycles (ph "X")
    args: dict = field(default_factory=dict)

    @property
    def ph(self) -> str:
        return "i" if self.dur is None else "X"

    def to_chrome(self) -> dict:
        """The chrome://tracing trace-event object for this event."""
        args: dict[str, Any] = {}
        if self.packet is not None:
            args["packet"] = self.packet
        args.update(self.args)
        out: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.cycle,
            "pid": self.node if self.node is not None else 0,
            "tid": self.lane if self.lane is not None else self.cat,
            "args": args,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        else:
            out["s"] = "t"  # instant scope: thread
        return out


class Tracer:
    """A ring buffer of :class:`TraceEvent`, with a global on/off switch.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are dropped (and counted
        in :attr:`dropped`) once the ring is full.
    categories:
        Optional allow-list of categories; events outside it are
        discarded at emit time (cheaply, before construction of the
        event object's args reaches the ring).
    """

    def __init__(
        self,
        capacity: int = 65536,
        categories: Optional[Iterable[str]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1: {capacity}")
        self.enabled = False
        #: Current simulated cycle, maintained by the tick loops so
        #: trace points without direct cycle context (e.g. the back-off
        #: policy's window draws) can still stamp their events.
        self.cycle = 0
        self.capacity = capacity
        self.categories = frozenset(categories) if categories else None
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    # -- emission ------------------------------------------------------

    def emit(
        self,
        name: str,
        *,
        cat: str,
        cycle: Optional[int] = None,
        node: Optional[int] = None,
        lane: Optional[str] = None,
        packet: Optional[int] = None,
        dur: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record one event (call only behind an ``enabled`` guard)."""
        if self.categories is not None and cat not in self.categories:
            return
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(
            TraceEvent(
                name=name,
                cat=cat,
                cycle=self.cycle if cycle is None else cycle,
                node=node,
                lane=lane,
                packet=packet,
                dur=dur,
                args=args,
            )
        )
        self.emitted += 1

    def clear(self) -> None:
        self._ring.clear()
        self.emitted = 0
        self.dropped = 0
        self.cycle = 0

    def __len__(self) -> int:
        return len(self._ring)

    # -- filtered access -----------------------------------------------

    def events(
        self,
        *,
        cat: Optional[str] = None,
        name: Optional[str] = None,
        node: Optional[int] = None,
        lane: Optional[str] = None,
        packet: Optional[int] = None,
    ) -> Iterator[TraceEvent]:
        """Retained events matching every given filter dimension."""
        for event in self._ring:
            if cat is not None and event.cat != cat:
                continue
            if name is not None and event.name != name:
                continue
            if node is not None and event.node != node:
                continue
            if lane is not None and event.lane != lane:
                continue
            if packet is not None and event.packet != packet:
                continue
            yield event

    def category_counts(self) -> dict[str, int]:
        """Retained events per category (for trace summaries)."""
        counts: dict[str, int] = {}
        for event in self._ring:
            counts[event.cat] = counts.get(event.cat, 0) + 1
        return dict(sorted(counts.items()))

    # -- export --------------------------------------------------------

    def write_jsonl(
        self, path, *, extra: Optional[Iterable[dict]] = None, **filters: Any
    ) -> int:
        """Write matching events as trace-event JSONL; returns the count.

        One JSON object per line, each a complete, schema-valid
        trace event — the stream format ``repro trace`` emits and
        :func:`validate_trace_file` checks.  ``extra`` appends
        ready-made trace-event dicts (e.g. the timeline's counter
        events) after the ring's events, merging both streams into one
        file chrome://tracing loads directly.
        """
        count = 0
        with open(path, "w") as handle:
            for event in self.events(**filters):
                handle.write(json.dumps(event.to_chrome(), sort_keys=True))
                handle.write("\n")
                count += 1
            for event in extra or ():
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
                count += 1
        return count

    def write_chrome_json(
        self, path, *, extra: Optional[Iterable[dict]] = None, **filters: Any
    ) -> int:
        """Write a ``{"traceEvents": [...]}`` object (chrome://tracing).

        The JSONL form round-trips into this shape via
        ``{"traceEvents": [json.loads(l) for l in open(p)]}``; this
        helper just saves the step for direct loading.  ``extra``
        merges ready-made trace-event dicts as in :meth:`write_jsonl`.
        """
        events = [event.to_chrome() for event in self.events(**filters)]
        events.extend(extra or ())
        with open(path, "w") as handle:
            json.dump({"traceEvents": events}, handle, sort_keys=True)
            handle.write("\n")
        return len(events)


#: The process-global tracer every instrumentation site guards on.
TRACE = Tracer()


@contextmanager
def tracing(
    capacity: int = 65536, categories: Optional[Iterable[str]] = None
):
    """Enable the global tracer for a block.

    Entry clears the buffer and switches :data:`TRACE` on; exit
    restores the previous enabled state and category filter but keeps
    the collected events, so the yielded tracer can still be queried
    and exported after the block::

        with tracing() as t:
            CmpSystem(config).run(cycles)
        t.write_jsonl("trace.jsonl")

    Nested ``tracing`` blocks are not supported (the inner block would
    clear the outer block's events).
    """
    if capacity < 1:
        raise ValueError(f"trace capacity must be >= 1: {capacity}")
    previous_enabled = TRACE.enabled
    TRACE.enabled = True
    TRACE.cycle = 0
    TRACE.capacity = capacity
    TRACE.categories = frozenset(categories) if categories else None
    TRACE._ring = deque(maxlen=capacity)
    TRACE.emitted = 0
    TRACE.dropped = 0
    try:
        yield TRACE
    finally:
        TRACE.enabled = previous_enabled


# -- schema validation ----------------------------------------------------


def validate_event(event: dict) -> None:
    """Raise ``ValueError`` unless ``event`` is a valid trace event."""
    if not isinstance(event, dict):
        raise ValueError(f"trace event is not an object: {event!r}")
    for key in REQUIRED_KEYS:
        if key not in event:
            raise ValueError(f"trace event missing {key!r}: {event!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        raise ValueError(f"trace event name must be a non-empty string: {event!r}")
    if not isinstance(event["cat"], str) or not event["cat"]:
        raise ValueError(f"trace event cat must be a non-empty string: {event!r}")
    if event["ph"] not in VALID_PHASES:
        raise ValueError(f"unsupported trace phase {event['ph']!r}: {event!r}")
    if not isinstance(event["ts"], (int, float)):
        raise ValueError(f"trace event ts must be numeric: {event!r}")
    if not isinstance(event["pid"], int):
        raise ValueError(f"trace event pid must be an int: {event!r}")
    if event["ph"] == "X":
        if not isinstance(event.get("dur"), (int, float)):
            raise ValueError(f"span event needs a numeric dur: {event!r}")
    if "args" in event and not isinstance(event["args"], dict):
        raise ValueError(f"trace event args must be an object: {event!r}")
    if event["ph"] == "C":
        args = event.get("args")
        if not args:
            raise ValueError(f"counter event needs non-empty args: {event!r}")
        for key, value in args.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"counter series {key!r} must be numeric: {event!r}"
                )


def validate_trace_file(path) -> int:
    """Validate a JSONL trace file; returns the number of events.

    Every line must parse as JSON and pass :func:`validate_event`.
    Raises ``ValueError`` (with the offending line number) otherwise.
    """
    count = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                validate_event(event)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            count += 1
    if count == 0:
        raise ValueError(f"{path}: empty trace (no events)")
    return count
