"""Simulation observability: metrics, tracing, profiling, timelines, health.

Five orthogonal facilities, all designed to be **zero-overhead when
disabled** (every instrumentation site is a single guarded attribute
check) and **non-perturbing when enabled** (they only read simulator
state — no RNG draws, no scheduling changes — so a traced run produces
bit-identical results to an untraced one):

* :class:`MetricsRegistry` — a hierarchical, snapshot-able registry
  that unifies the scattered :class:`~repro.util.stats.StatGroup`
  trees (network, per-node L1/directory, memory, sync) behind one
  export surface with canonical JSON and CSV serialization.
  :meth:`repro.cmp.CmpSystem.metrics_registry` builds one for a run.
* :class:`Tracer` / the global :data:`TRACE` — a ring-buffered
  structured event trace with points wired into the FSOI tick loop,
  back-off, confirmation channel, mesh routers and the coherence
  layer.  Events are filterable by node / lane / packet and export as
  JSONL in the ``chrome://tracing`` trace-event format.
* :class:`PhaseProfiler` / the global :data:`PROFILER` — per-phase
  wall-time attribution of the cycle loop (calendar, memory, network,
  cores), surfaced through ``repro profile``.
* :class:`TimelineCollector` / the global :data:`TIMELINE` — windowed
  time-series telemetry: per-window deltas of selected registry paths
  in columnar numpy ring buffers, exported as JSONL, chrome://tracing
  counter events and OpenMetrics text, rendered live by ``repro top``.
* :mod:`repro.obs.health` — invariant/anomaly watchdogs over the
  timeline and live system (starvation, backoff storms, counter
  leaks, message conservation) raising structured
  :class:`HealthEvent` records; ``--strict-health`` fails a run on any.

See ``docs/observability.md`` for the trace format, registry schema,
timeline/health schemas and the profiling workflow.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    TRACE,
    TraceEvent,
    Tracer,
    tracing,
    validate_event,
    validate_trace_file,
)
from repro.obs.profile import PROFILER, PhaseProfiler, profiling
from repro.obs.timeline import (
    DEFAULT_TIMELINE_PATHS,
    TIMELINE,
    TimelineCollector,
    load_timeline_jsonl,
    timelining,
    validate_openmetrics,
    window_deltas,
)
from repro.obs.health import (
    HealthConfig,
    HealthError,
    HealthEvent,
    check_health,
    render_health,
)

__all__ = [
    "DEFAULT_TIMELINE_PATHS",
    "HealthConfig",
    "HealthError",
    "HealthEvent",
    "MetricsRegistry",
    "PROFILER",
    "PhaseProfiler",
    "TIMELINE",
    "TRACE",
    "TimelineCollector",
    "TraceEvent",
    "Tracer",
    "check_health",
    "load_timeline_jsonl",
    "profiling",
    "render_health",
    "timelining",
    "tracing",
    "validate_event",
    "validate_openmetrics",
    "validate_trace_file",
    "window_deltas",
]
