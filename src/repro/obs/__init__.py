"""Simulation observability: metrics registry, event tracing, profiling.

Three orthogonal facilities, all designed to be **zero-overhead when
disabled** (every instrumentation site is a single guarded attribute
check) and **non-perturbing when enabled** (they only read simulator
state — no RNG draws, no scheduling changes — so a traced run produces
bit-identical results to an untraced one):

* :class:`MetricsRegistry` — a hierarchical, snapshot-able registry
  that unifies the scattered :class:`~repro.util.stats.StatGroup`
  trees (network, per-node L1/directory, memory, sync) behind one
  export surface with canonical JSON and CSV serialization.
  :meth:`repro.cmp.CmpSystem.metrics_registry` builds one for a run.
* :class:`Tracer` / the global :data:`TRACE` — a ring-buffered
  structured event trace with points wired into the FSOI tick loop,
  back-off, confirmation channel, mesh routers and the coherence
  layer.  Events are filterable by node / lane / packet and export as
  JSONL in the ``chrome://tracing`` trace-event format.
* :class:`PhaseProfiler` / the global :data:`PROFILER` — per-phase
  wall-time attribution of the cycle loop (calendar, memory, network,
  cores), surfaced through ``repro profile``.

See ``docs/observability.md`` for the trace format, registry schema
and profiling workflow.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    TRACE,
    TraceEvent,
    Tracer,
    tracing,
    validate_event,
    validate_trace_file,
)
from repro.obs.profile import PROFILER, PhaseProfiler, profiling

__all__ = [
    "MetricsRegistry",
    "PROFILER",
    "PhaseProfiler",
    "TRACE",
    "TraceEvent",
    "Tracer",
    "profiling",
    "tracing",
    "validate_event",
    "validate_trace_file",
]
